open Overgen_adg
open Overgen_workload

(* The source frontend for the pragma'd C dialect that {!C_source.emit}
   produces: a dependency-free lexer, a recursive-descent parser and a
   lowering pass into the existing {!Ir.kernel}.

   The contract mirrors the service's PR 4 isolation discipline: no
   exception ever escapes {!parse} — every rejection is a located
   {!error}, and an unexpected internal exception is demoted to one. *)

type error = { line : int; col : int; msg : string }

let error_to_string e = Printf.sprintf "%d:%d: %s" e.line e.col e.msg

exception Parse_error of error

let err line col fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { line; col; msg })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type tok =
  | Ident of string
  | Int of int
  | Float of float
  | Punct of string
  | Pragma of string  (* the raw text after "#pragma dsa" *)
  | Eof

type token = { tok : tok; line : int; col : int }

let tok_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Float f -> Printf.sprintf "float %s" (Ir.float_literal f)
  | Punct p -> Printf.sprintf "%S" p
  | Pragma p -> Printf.sprintf "#pragma dsa %s" p
  | Eof -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let advance () =
    (if src.[!pos] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr pos
  in
  let emit line col tok = toks := { tok; line; col } :: !toks in
  let take_while p =
    let start = !pos in
    while !pos < n && p src.[!pos] do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  while !pos < n do
    let c = src.[!pos] in
    let l = !line and co = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '/' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '*' && !pos + 1 < n && src.[!pos + 1] = '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then err l co "unterminated comment"
    end
    else if c = '#' then begin
      (* preprocessor line: keep "#pragma dsa ..." as a token, skip the
         rest (includes, macro definitions) *)
      let start = !pos in
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done;
      let text = String.sub src start (!pos - start) in
      let words =
        String.split_on_char ' ' text
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | "#pragma" :: "dsa" :: rest -> emit l co (Pragma (String.concat " " rest))
      | "#" :: "pragma" :: "dsa" :: rest ->
        emit l co (Pragma (String.concat " " rest))
      | _ -> ()
    end
    else if is_digit c then begin
      let intpart = take_while is_digit in
      let is_float = ref false in
      let buf = Buffer.create 16 in
      Buffer.add_string buf intpart;
      if !pos < n && src.[!pos] = '.' then begin
        is_float := true;
        Buffer.add_char buf '.';
        advance ();
        Buffer.add_string buf (take_while is_digit)
      end;
      if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
        is_float := true;
        Buffer.add_char buf 'e';
        advance ();
        if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then begin
          Buffer.add_char buf src.[!pos];
          advance ()
        end;
        let digits = take_while is_digit in
        if digits = "" then err l co "malformed exponent";
        Buffer.add_string buf digits
      end;
      (* C float suffixes *)
      if !pos < n && (src.[!pos] = 'f' || src.[!pos] = 'F') then begin
        is_float := true;
        advance ()
      end;
      let text = Buffer.contents buf in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> emit l co (Float f)
        | None -> err l co "malformed float literal %S" text
      else (
        match int_of_string_opt text with
        | Some i -> emit l co (Int i)
        | None -> err l co "integer literal %S out of range" text)
    end
    else if is_ident_start c then emit l co (Ident (take_while is_ident_char))
    else begin
      let two =
        if !pos + 1 < n then String.sub src !pos 2 else String.make 1 c
      in
      match two with
      | "<<" | ">>" | "==" | "+=" | "-=" | "++" | "&&" | "||" | "<=" | ">=" ->
        advance ();
        advance ();
        emit l co (Punct two)
      | _ -> (
        match c with
        | '(' | ')' | '[' | ']' | '{' | '}' | ';' | ',' | '=' | '+' | '-'
        | '*' | '/' | '%' | '<' | '>' | '&' | '|' | '^' | '~' | '!' | '?'
        | ':' ->
          advance ();
          emit l co (Punct (String.make 1 c))
        | _ -> err l co "stray character %C" c)
    end
  done;
  emit !line !col Eof;
  Array.of_list (List.rev !toks)

(* ------------------------------------------------------------------ *)
(* Token stream                                                        *)
(* ------------------------------------------------------------------ *)

type stream = { toks : token array; mutable i : int }

let peek s = s.toks.(s.i)
let peek2 s = if s.i + 1 < Array.length s.toks then s.toks.(s.i + 1) else peek s
let next s =
  let t = s.toks.(s.i) in
  if s.i + 1 < Array.length s.toks then s.i <- s.i + 1;
  t

let err_at (t : token) fmt = err t.line t.col fmt

let expect s want =
  let t = next s in
  match t.tok with
  | Punct p when p = want -> ()
  | _ -> err_at t "expected %S, found %s" want (tok_to_string t.tok)

let expect_ident s =
  let t = next s in
  match t.tok with
  | Ident id -> (id, t)
  | _ -> err_at t "expected an identifier, found %s" (tok_to_string t.tok)

let expect_int s =
  let t = next s in
  match t.tok with
  | Int n -> (n, t)
  | _ -> err_at t "expected an integer, found %s" (tok_to_string t.tok)

let at_punct s p = match (peek s).tok with Punct q -> q = p | _ -> false

(* ------------------------------------------------------------------ *)
(* Pragma attribute mini-parser                                        *)
(* ------------------------------------------------------------------ *)

(* A pragma's payload is "word(raw text)" attributes and bare flags; the
   raw text runs to the {e matching} close paren, so attribute values may
   themselves contain balanced parens (tune descriptions do). *)
let parse_attrs (t : token) text =
  let n = String.length text in
  let attrs = ref [] and flags = ref [] in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (text.[!pos] = ' ' || text.[!pos] = '\t') do
      incr pos
    done
  in
  skip_ws ();
  while !pos < n do
    let start = !pos in
    while !pos < n && is_ident_char text.[!pos] do
      incr pos
    done;
    if !pos = start then
      err_at t "malformed pragma attribute near %S"
        (String.sub text !pos (min 8 (n - !pos)));
    let word = String.sub text start (!pos - start) in
    if !pos < n && text.[!pos] = '(' then begin
      incr pos;
      let vstart = !pos in
      let depth = ref 1 in
      while !depth > 0 && !pos < n do
        (match text.[!pos] with
        | '(' -> incr depth
        | ')' -> decr depth
        | _ -> ());
        if !depth > 0 then incr pos
      done;
      if !depth > 0 then err_at t "unterminated pragma attribute %s(" word;
      attrs := (word, String.sub text vstart (!pos - vstart)) :: !attrs;
      incr pos (* the closing paren *)
    end
    else flags := word :: !flags;
    skip_ws ()
  done;
  (List.rev !attrs, List.rev !flags)

let attr t attrs name =
  match List.assoc_opt name attrs with
  | Some v -> v
  | None -> err_at t "pragma is missing the %s(...) attribute" name

let int_attr t attrs name =
  let v = attr t attrs name in
  match int_of_string_opt (String.trim v) with
  | Some n -> n
  | None -> err_at t "pragma attribute %s(%s) is not an integer" name v

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let demangle s =
  if String.length s > 3 && String.sub s 0 3 = "og_" then
    String.sub s 3 (String.length s - 3)
  else s

let known_types =
  [ "int8_t"; "int16_t"; "int32_t"; "int64_t"; "float"; "double" ]

type decls = {
  mutable arrays : (string * int) list; (* reversed build order *)
  mutable scalars : string list;
}

let is_array decls name = List.mem_assoc name decls.arrays
let is_scalar decls name = List.mem name decls.scalars

(* static TYPE og_x[N];  |  static TYPE og_p = <num>; *)
let parse_static_decl s decls =
  let _ = next s in
  let ty, tyt = expect_ident s in
  if not (List.mem ty known_types) then
    err_at tyt "unknown element type %S" ty;
  let raw, namet = expect_ident s in
  let name = demangle raw in
  if is_array decls name || is_scalar decls name then
    err_at namet "duplicate declaration of %S" name;
  if at_punct s "[" then begin
    expect s "[";
    let elems, et = expect_int s in
    if elems <= 0 then err_at et "array %S has non-positive size %d" name elems;
    expect s "]";
    expect s ";";
    decls.arrays <- (name, elems) :: decls.arrays
  end
  else begin
    expect s "=";
    let t = next s in
    (match t.tok with
    | Int _ | Float _ -> ()
    | Punct "-" -> (
      let t2 = next s in
      match t2.tok with
      | Int _ | Float _ -> ()
      | _ -> err_at t2 "expected a numeric initializer")
    | _ -> err_at t "expected a numeric initializer");
    expect s ";";
    decls.scalars <- name :: decls.scalars
  end

(* ------------------------------------------------------------------ *)
(* Affine subscripts                                                   *)
(* ------------------------------------------------------------------ *)

(* subscript ::= term (('+'|'-') term)*
   term      ::= INT | INT '*' IDENT | IDENT ('*' INT)?
   Anything else (products of variables, parens, calls) is rejected as a
   non-affine subscript. *)
let parse_affine s ~loop_vars =
  let terms = Hashtbl.create 4 in
  let const = ref 0 in
  let add_term t v c =
    if not (List.mem v loop_vars) then
      err_at t "subscript variable %S is not an induction variable in scope" v;
    Hashtbl.replace terms v (c + try Hashtbl.find terms v with Not_found -> 0)
  in
  let parse_term sign =
    let t = next s in
    match t.tok with
    | Int c ->
      if at_punct s "*" then begin
        expect s "*";
        let v, vt = expect_ident s in
        add_term vt v (sign * c)
      end
      else const := !const + (sign * c)
    | Ident v ->
      if at_punct s "*" then begin
        expect s "*";
        let t2 = next s in
        match t2.tok with
        | Int c -> add_term t v (sign * c)
        | _ ->
          err_at t2
            "non-affine subscript: %S may only be scaled by a constant \
             (subscripts are affine in the induction variables)"
            v
      end
      else add_term t v sign
    | _ ->
      err_at t "non-affine subscript: expected a term, found %s"
        (tok_to_string t.tok)
  in
  let lead_sign = if at_punct s "-" then (expect s "-"; -1) else 1 in
  parse_term lead_sign;
  let rec loop () =
    if at_punct s "+" then begin
      expect s "+";
      parse_term 1;
      loop ()
    end
    else if at_punct s "-" then begin
      expect s "-";
      parse_term (-1);
      loop ()
    end
    else if at_punct s "]" then ()
    else
      let t = peek s in
      err_at t "non-affine subscript: unexpected %s" (tok_to_string t.tok)
  in
  loop ();
  Ir.affine ~const:!const (Hashtbl.fold (fun v c acc -> (v, c) :: acc) terms [])

(* aref ::= ARRAY '[' subscript ']' | ARRAY '[' IDXARRAY '[' subscript ']' ']' *)
let parse_aref s decls ~loop_vars =
  let raw, at = expect_ident s in
  let array = demangle raw in
  if not (is_array decls array) then err_at at "undeclared array %S" array;
  expect s "[";
  let indirect =
    match ((peek s).tok, (peek2 s).tok) with
    | Ident inner, Punct "[" when is_array decls (demangle inner) -> true
    | _ -> false
  in
  let index =
    if indirect then begin
      let inner, _ = expect_ident s in
      let idx_array = demangle inner in
      expect s "[";
      let at_ = parse_affine s ~loop_vars in
      expect s "]";
      Ir.Indirect { idx_array; at = at_ }
    end
    else Ir.Direct (parse_affine s ~loop_vars)
  in
  expect s "]";
  { Ir.array; index }

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Precedence climbing over the C subset the dialect uses.  Levels from
   loosest: bor, bxor, band, equality, comparison, shifts, additive,
   multiplicative; then unary minus and primaries.  MIN/MAX/sqrt/fabs
   and the spelled-out [Op] names arrive as calls. *)
let binop_of_punct = function
  | "|" -> Some (0, Op.Bor)
  | "^" -> Some (1, Op.Bxor)
  | "&" -> Some (2, Op.Band)
  | "==" -> Some (3, Op.Cmp_eq)
  | "<" -> Some (4, Op.Cmp_lt)
  | "<<" -> Some (5, Op.Shl)
  | ">>" -> Some (5, Op.Shr)
  | "+" -> Some (6, Op.Add)
  | "-" -> Some (6, Op.Sub)
  | "*" -> Some (7, Op.Mul)
  | "/" -> Some (7, Op.Div)
  | _ -> None

let parse_expr s decls ~loop_vars =
  let rec expr min_prec =
    let lhs = ref (unary ()) in
    let continue_ = ref true in
    while !continue_ do
      match (peek s).tok with
      | Punct p -> (
        match binop_of_punct p with
        | Some (prec, op) when prec >= min_prec ->
          ignore (next s);
          let rhs = expr (prec + 1) in
          lhs := Ir.Binop (op, !lhs, rhs)
        | _ -> continue_ := false)
      | _ -> continue_ := false
    done;
    !lhs
  and unary () =
    if at_punct s "-" then begin
      let t = next s in
      match unary () with
      | Ir.Const f -> Ir.Const (-.f)
      | _ -> err_at t "negation is only supported on constants"
    end
    else primary ()
  and primary () =
    let t = next s in
    match t.tok with
    | Int n -> Ir.Const (float_of_int n)
    | Float f -> Ir.Const f
    | Punct "(" ->
      let e = expr 0 in
      expect s ")";
      e
    | Ident raw -> ident_expr t raw
    | _ -> err_at t "expected an expression, found %s" (tok_to_string t.tok)
  and ident_expr t raw =
    let name = demangle raw in
    if at_punct s "(" then call t raw
    else if at_punct s "[" then begin
      (* rewind onto the array name and reuse the aref parser *)
      s.i <- s.i - 1;
      Ir.Load (parse_aref s decls ~loop_vars)
    end
    else if is_scalar decls name then Ir.Param name
    else if List.mem name loop_vars || List.mem raw loop_vars then
      err_at t "induction variable %S used outside a subscript" raw
    else err_at t "undeclared identifier %S" raw
  and call t raw =
    expect s "(";
    let args = ref [ expr 0 ] in
    while at_punct s "," do
      expect s ",";
      args := expr 0 :: !args
    done;
    expect s ")";
    let args = List.rev !args in
    let unop op =
      match args with
      | [ a ] -> Ir.Unop (op, a)
      | _ -> err_at t "%s takes 1 argument, got %d" raw (List.length args)
    in
    let binop op =
      match args with
      | [ a; b ] -> Ir.Binop (op, a, b)
      | _ -> err_at t "%s takes 2 arguments, got %d" raw (List.length args)
    in
    match raw with
    | "sqrt" | "sqrtf" -> unop Op.Sqrt
    | "fabs" | "fabsf" | "abs" -> unop Op.Abs
    | "MIN" | "min" -> binop Op.Min
    | "MAX" | "max" -> binop Op.Max
    | _ -> (
      match Op.of_string raw with
      | Some op -> (
        match Op.arity op with
        | 1 -> unop op
        | 2 -> binop op
        | _ -> err_at t "op %S is not expressible in the loop-nest IR" raw)
      | None -> err_at t "unknown op %S" raw)
  in
  expr 0

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* Canonicalization: [x = op(x, e)] and [x = (x op e)] always lower to
   the read-modify-write forms ([Accum] on arrays, [Reduce] on scalars),
   matching what the emitter prints for them. *)
(* Only the operations whose [Accum] rendering is the same surface
   syntax ([+=]/[-=], the MIN/MAX macro form, [x = (x * e)]) are
   ambiguous and need the RMW canonicalization; for any other operation
   [x = (x op e)] and [x = op(x, e)] are distinct spellings, and the
   binop one stays a [Store] (cholesky's scale region is exactly
   [l[..] = (l[..] / sqrt(..))]). *)
let rmw_idiom = function
  | Op.Add | Op.Sub | Op.Mul | Op.Min | Op.Max -> true
  | _ -> false

let canon_store r e =
  match e with
  | Ir.Binop (op, Ir.Load r', e') when rmw_idiom op && Ir.aref_equal r r' ->
    Ir.Accum (r, op, e')
  | _ -> Ir.Store (r, e)

let canon_reduce name e t =
  match e with
  | Ir.Binop (op, Ir.Param p, e') when p = name -> Ir.Reduce (name, op, e')
  | _ ->
    err_at t
      "scalar %S may only be assigned a reduction of itself (e.g. %s = %s + ...)"
      name name name

let parse_stmt s decls ~loop_vars =
  let t = peek s in
  let raw =
    match t.tok with
    | Ident raw -> raw
    | _ -> err_at t "expected a statement, found %s" (tok_to_string t.tok)
  in
  let name = demangle raw in
  if (peek2 s).tok = Punct "[" then begin
    let r = parse_aref s decls ~loop_vars in
    let t2 = next s in
    let stmt =
      match t2.tok with
      | Punct "=" -> canon_store r (parse_expr s decls ~loop_vars)
      | Punct "+=" -> Ir.Accum (r, Op.Add, parse_expr s decls ~loop_vars)
      | Punct "-=" -> Ir.Accum (r, Op.Sub, parse_expr s decls ~loop_vars)
      | _ -> err_at t2 "expected =, += or -= after an array reference"
    in
    expect s ";";
    stmt
  end
  else begin
    ignore (next s);
    if not (is_scalar decls name) then
      err_at t "undeclared scalar %S on the left-hand side" raw;
    let t2 = next s in
    let stmt =
      match t2.tok with
      | Punct "+=" -> Ir.Reduce (name, Op.Add, parse_expr s decls ~loop_vars)
      | Punct "-=" -> Ir.Reduce (name, Op.Sub, parse_expr s decls ~loop_vars)
      | Punct "=" -> canon_reduce name (parse_expr s decls ~loop_vars) t2
      | _ -> err_at t2 "expected =, += or -= after scalar %S" raw
    in
    expect s ";";
    stmt
  end

(* ------------------------------------------------------------------ *)
(* Loops and regions                                                   *)
(* ------------------------------------------------------------------ *)

(* for (int v = 0; v < BOUND; ++v) { ... }   with
   BOUND ::= INT | OG_TRI(<var or 0>, INT) *)
let parse_for_header s =
  let ft = next s in
  (match ft.tok with
  | Ident "for" -> ()
  | _ -> err_at ft "expected a for loop, found %s" (tok_to_string ft.tok));
  expect s "(";
  let it = next s in
  (match it.tok with
  | Ident "int" -> ()
  | _ -> err_at it "expected 'int' in the loop initializer");
  let var, _ = expect_ident s in
  expect s "=";
  let z, zt = expect_int s in
  if z <> 0 then err_at zt "loops must start at 0";
  expect s ";";
  let v2, v2t = expect_ident s in
  if v2 <> var then err_at v2t "loop condition tests %S, expected %S" v2 var;
  expect s "<";
  let bt = peek s in
  let trip =
    match bt.tok with
    | Int n ->
      ignore (next s);
      if n <= 0 then err_at bt "non-positive trip count %d" n;
      Ir.Fixed n
    | Ident "OG_TRI" ->
      ignore (next s);
      expect s "(";
      (* the dependent variable: an enclosing induction variable, or the
         literal 0 for a (degenerate) outermost triangular loop *)
      (match (next s).tok with
      | Ident _ | Int 0 -> ()
      | other ->
        err_at bt "OG_TRI expects an induction variable, found %s"
          (tok_to_string other));
      expect s ",";
      let n, nt = expect_int s in
      if n <= 0 then err_at nt "non-positive trip count %d" n;
      expect s ")";
      Ir.Triangular n
    | _ ->
      err_at bt "loop bound must be an integer or OG_TRI(var, n), found %s"
        (tok_to_string bt.tok)
  in
  expect s ";";
  let pt = next s in
  (match pt.tok with
  | Punct "++" -> ()
  | _ -> err_at pt "expected ++ in the loop increment");
  let v3, v3t = expect_ident s in
  if v3 <> var then err_at v3t "loop increment bumps %S, expected %S" v3 var;
  expect s ")";
  expect s "{";
  { Ir.var; trip }

(* One region: nested fors (statements only at the innermost level),
   closing braces checked on the way out. *)
let rec parse_nest s decls ~loop_vars =
  let l = parse_for_header s in
  if List.mem l.Ir.var loop_vars then begin
    let t = peek s in
    err_at t "induction variable %S shadows an enclosing loop" l.Ir.var
  end;
  let loop_vars = l.Ir.var :: loop_vars in
  if (match (peek s).tok with Ident "for" -> true | _ -> false) then begin
    let inner_loops, body = parse_nest s decls ~loop_vars in
    expect s "}";
    (l :: inner_loops, body)
  end
  else begin
    let body = ref [] in
    while not (at_punct s "}") do
      body := parse_stmt s decls ~loop_vars :: !body
    done;
    expect s "}";
    if !body = [] then begin
      let t = peek s in
      err_at t "region has an empty loop body"
    end;
    ([ l ], List.rev !body)
  end

let parse_hls (t : token) text =
  match
    String.split_on_char ' ' text |> List.filter (fun w -> w <> "")
  with
  | [ "clean" ] -> Ir.Clean
  | [ "variable_trip"; u; tu ] -> (
    match (int_of_string_opt u, int_of_string_opt tu) with
    | Some untuned_ii, Some tuned_ii -> Ir.Variable_trip { untuned_ii; tuned_ii }
    | _ -> err_at t "malformed hls(variable_trip ...) attribute")
  | [ "strided"; u ] -> (
    match int_of_string_opt u with
    | Some untuned_ii -> Ir.Strided { untuned_ii }
    | None -> err_at t "malformed hls(strided ...) attribute")
  | _ -> err_at t "unknown hls pattern %S" text

let parse_region s decls (t : token) pragma_text =
  let attrs, _flags = parse_attrs t pragma_text in
  let rname = String.trim (attr t attrs "region") in
  let hls = parse_hls t (attr t attrs "hls") in
  let loops, body = parse_nest s decls ~loop_vars:[] in
  { Ir.rname; loops; body; hls }

(* #pragma dsa config { regions... } inside a kernel function body *)
let parse_config_block s decls =
  let t = next s in
  (match t.tok with
  | Pragma p when String.trim p = "config" -> ()
  | _ -> err_at t "expected '#pragma dsa config', found %s" (tok_to_string t.tok));
  expect s "{";
  let regions = ref [] in
  let rec loop () =
    match (peek s).tok with
    | Punct "}" -> ignore (next s)
    | Pragma p -> (
      let pt = next s in
      match String.split_on_char ' ' (String.trim p) with
      | "decouple" :: rest ->
        regions := parse_region s decls pt (String.concat " " rest) :: !regions;
        loop ()
      | _ -> err_at pt "expected '#pragma dsa decouple ...' inside config")
    | other ->
      let t = peek s in
      err_at t "expected a decouple pragma or '}', found %s" (tok_to_string other)
  in
  loop ();
  if !regions = [] then err_at t "config block has no regions";
  List.rev !regions

(* void NAME(void) { <config block> } *)
let parse_kernel_fn s decls =
  let _ = next s (* void *) in
  let fname, _ = expect_ident s in
  expect s "(";
  let vt = next s in
  (match vt.tok with
  | Ident "void" -> ()
  | _ -> err_at vt "expected (void) parameter list");
  expect s ")";
  expect s "{";
  let regions = parse_config_block s decls in
  expect s "}";
  (fname, regions)

(* any other top-level definition — the reference main, or a stray
   non-static global: skip a function's balanced braces, or a plain
   declaration through its ';' *)
let skip_toplevel s =
  let _ = next s (* return type *) in
  let _ = expect_ident s in
  let t = next s in
  match t.tok with
  | Punct ";" -> ()
  | Punct "=" ->
    let rec to_semi () =
      let t = next s in
      match t.tok with
      | Punct ";" -> ()
      | Eof -> err_at t "unterminated declaration"
      | _ -> to_semi ()
    in
    to_semi ()
  | Punct "(" ->
    let rec to_close () =
      let t = next s in
      match t.tok with
      | Punct ")" -> ()
      | Eof -> err_at t "unterminated parameter list"
      | _ -> to_close ()
    in
    to_close ();
    expect s "{";
    let depth = ref 1 in
    while !depth > 0 do
      let t = next s in
      match t.tok with
      | Punct "{" -> incr depth
      | Punct "}" -> decr depth
      | Eof -> err_at t "unterminated function body"
      | _ -> ()
    done
  | _ -> err_at t "expected a declaration or function at top level"

(* ------------------------------------------------------------------ *)
(* Bounds checking                                                     *)
(* ------------------------------------------------------------------ *)

(* Exact subscript range check by enumerating the region's iteration
   space.  Interval arithmetic would be too conservative: a triangular
   loop's variable is coupled to its enclosing variable (w <= u mod n),
   and kernels like crs size their arrays to the coupled maximum, not
   the independent one.  The enumeration honors the same coupling the
   emitter encodes in OG_TRI (nearest enclosing loop, degenerate single
   iteration when outermost) and is skipped past a work cap — it exists
   to catch lowering mistakes and hostile input, not to be a prover. *)
let bounds_work_cap = 5_000_000

let check_bounds (k : Ir.kernel) =
  List.iter
    (fun (r : Ir.region) ->
      (* (array to size-check, affine subscript into it); an indirect
         target's subscript is a runtime value, so check the index-array
         access instead *)
      let refs =
        List.concat_map
          (fun st ->
            let all =
              Ir.stmt_loads st
              @ match Ir.stmt_store st with Some a -> [ a ] | None -> []
            in
            List.map
              (fun (a : Ir.aref) ->
                match a.index with
                | Ir.Direct x -> (a.array, x)
                | Ir.Indirect { idx_array; at } -> (idx_array, at))
              all)
          r.body
        |> List.sort_uniq compare
      in
      let total =
        List.fold_left
          (fun acc (l : Ir.loop) ->
            if acc > bounds_work_cap then acc else acc * Ir.trip_max l.trip)
          1 r.loops
      in
      if refs <> [] && total <= bounds_work_cap then begin
        let env = Hashtbl.create 4 in
        let ranges = Array.make (List.length refs) (max_int, min_int) in
        let eval (a : Ir.affine) =
          List.fold_left
            (fun acc (v, c) -> acc + (c * Hashtbl.find env v))
            a.const a.terms
        in
        let rec go loops prev =
          match loops with
          | [] ->
            List.iteri
              (fun i (_, a) ->
                let x = eval a in
                let lo, hi = ranges.(i) in
                ranges.(i) <- (min lo x, max hi x))
              refs
          | (l : Ir.loop) :: rest ->
            let bound =
              match l.trip with
              | Ir.Fixed n -> n
              | Ir.Triangular n -> (
                match prev with Some u -> (u mod n) + 1 | None -> 1)
            in
            for x = 0 to bound - 1 do
              Hashtbl.replace env l.var x;
              go rest (Some x)
            done
        in
        go r.loops None;
        List.iteri
          (fun i (arr, _) ->
            let lo, hi = ranges.(i) in
            if lo <= hi then begin
              let elems =
                match List.assoc_opt arr k.arrays with Some e -> e | None -> 0
              in
              if lo < 0 then
                err 0 0 "subscript of %S can reach %d (negative) in region %S"
                  arr lo r.rname;
              if hi >= elems then
                err 0 0
                  "subscript of %S can reach %d but it has %d elements (region %S)"
                  arr hi elems r.rname
            end)
          refs
      end)
    (k.regions @ match k.og_tuning with Some t -> t.regions | None -> [])

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

type meta = {
  mname : string;
  suite : Suite.t;
  dtype : Dtype.t;
  lanes : int;
  size_desc : string;
  window_reuse : bool;
  needs_broadcast : bool;
}

let parse_kernel_pragma (t : token) text =
  let attrs, flags = parse_attrs t text in
  let mname = String.trim (attr t attrs "name") in
  if mname = "" then err_at t "empty kernel name";
  let suite_s = String.trim (attr t attrs "suite") in
  let suite =
    match Suite.of_string suite_s with
    | Some s -> s
    | None -> err_at t "unknown suite %S" suite_s
  in
  let dtype_s = String.trim (attr t attrs "dtype") in
  let dtype =
    match Dtype.of_string dtype_s with
    | Some d -> d
    | None -> err_at t "unknown dtype %S" dtype_s
  in
  let lanes = int_attr t attrs "lanes" in
  if lanes < 1 then err_at t "lanes must be positive";
  {
    mname;
    suite;
    dtype;
    lanes;
    size_desc = attr t attrs "size";
    window_reuse = List.mem "window_reuse" flags;
    needs_broadcast = List.mem "broadcast" flags;
  }

let c_fn_name name = String.map (function '-' -> '_' | c -> c) name

let parse_internal src =
  let s = { toks = tokenize src; i = 0 } in
  let decls = { arrays = []; scalars = [] } in
  let meta = ref None in
  let fns = ref [] in
  let tune_desc = ref None in
  let pending_tune = ref None in
  let rec loop () =
    let t = peek s in
    match t.tok with
    | Eof -> ()
    | Pragma p -> (
      ignore (next s);
      match String.split_on_char ' ' (String.trim p) with
      | "kernel" :: rest ->
        if !meta <> None then err_at t "duplicate '#pragma dsa kernel'";
        meta := Some (parse_kernel_pragma t (String.concat " " rest));
        loop ()
      | "tune" :: rest ->
        let attrs, _ = parse_attrs t (String.concat " " rest) in
        pending_tune := Some (attr t attrs "desc");
        loop ()
      | "config" :: _ | "decouple" :: _ ->
        err_at t "'#pragma dsa %s' outside a kernel function"
          (List.hd (String.split_on_char ' ' (String.trim p)))
      | _ -> err_at t "unknown pragma '#pragma dsa %s'" p)
    | Ident "static" ->
      parse_static_decl s decls;
      loop ()
    | Ident "void" ->
      let fname, regions = parse_kernel_fn s decls in
      fns := (fname, regions, !pending_tune) :: !fns;
      (match !pending_tune with
      | Some d -> tune_desc := Some d
      | None -> ());
      pending_tune := None;
      loop ()
    | Ident ("int" | "int8_t" | "int16_t" | "int32_t" | "int64_t" | "float"
            | "double") ->
      skip_toplevel s;
      loop ()
    | other -> err_at t "unexpected %s at top level" (tok_to_string other)
  in
  loop ();
  let meta =
    match !meta with
    | Some m -> m
    | None -> err 1 1 "missing '#pragma dsa kernel ...' metadata pragma"
  in
  decls.arrays <- List.rev decls.arrays;
  let kfn = c_fn_name meta.mname ^ "_kernel" in
  let regions =
    match List.find_opt (fun (f, _, _) -> f = kfn) !fns with
    | Some (_, r, _) -> r
    | None -> err 1 1 "no function %S matching the kernel pragma" kfn
  in
  let og_tuning =
    match List.find_opt (fun (f, _, _) -> f = kfn ^ "_tuned") !fns with
    | None -> None
    | Some (_, tregions, _) ->
      let desc = match !tune_desc with Some d -> d | None -> "" in
      Some { Ir.desc; regions = tregions }
  in
  let k =
    {
      Ir.name = meta.mname;
      suite = meta.suite;
      dtype = meta.dtype;
      lanes = meta.lanes;
      arrays = decls.arrays;
      size_desc = meta.size_desc;
      regions;
      og_tuning;
      window_reuse = meta.window_reuse;
      needs_broadcast = meta.needs_broadcast;
    }
  in
  check_bounds k;
  k

let parse src =
  match parse_internal src with
  | k -> Ok k
  | exception Parse_error e -> Error e
  | exception ex ->
    (* the no-escaping-exceptions contract, held even against bugs in the
       parser itself *)
    Error { line = 0; col = 0; msg = "internal: " ^ Printexc.to_string ex }

(* Cheap metadata peek for telemetry: the kernel name from the metadata
   pragma, without running the full parser. *)
let source_name src =
  let marker = "#pragma dsa kernel" in
  let rec find i =
    match String.index_from_opt src i '#' with
    | None -> None
    | Some j ->
      if
        j + String.length marker <= String.length src
        && String.sub src j (String.length marker) = marker
      then
        let rest =
          String.sub src j (min 256 (String.length src - j))
        in
        let nm = "name(" in
        (match
           let rec idx k =
             if k + String.length nm > String.length rest then None
             else if String.sub rest k (String.length nm) = nm then Some k
             else idx (k + 1)
           in
           idx 0
         with
        | None -> None
        | Some k -> (
          let start = k + String.length nm in
          match String.index_from_opt rest start ')' with
          | Some close when close > start ->
            Some (String.sub rest start (close - start))
          | _ -> None))
      else find (j + 1)
  in
  find 0
