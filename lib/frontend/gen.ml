(* Seeded generator of random well-typed loop-nest kernels, used to fuzz
   the emit -> parse -> compile -> schedule -> simulate pipeline.  Every
   draw comes from an explicit Rng stream (never wall-clock), so a seed
   reproduces its kernel bit for bit; a coverage map over the grammar
   productions proves the generator actually exercises the dialect.

   Invariants the generator maintains (so a generated kernel is a legal
   frontend input and round-trips structurally):
   - subscripts reach index >= 0 at every point of the iteration space: a
     term with a negative coefficient is offset by a constant at least as
     large as its reach, and arrays are sized past the conservative
     maximum of every subscript that touches them;
   - [Store (r, Binop (op, Load r, e))] is canonicalized to
     [Accum (r, op, e)] exactly as the parser does;
   - scalar parameter and reduction-target names are disjoint pools;
   - only loads are indirect, with the index array drawn from its own
     name pool. *)

open Overgen_workload
module Op = Overgen_adg.Op
module Dtype = Overgen_adg.Dtype
module Rng = Overgen_util.Rng

module Cov = struct
  type t = (string, int) Hashtbl.t

  let productions =
    [
      "dtype.int";
      "dtype.float";
      "kernel.plain";
      "kernel.tuned";
      "flag.window_reuse";
      "flag.broadcast";
      "region.single";
      "region.multi";
      "nest.depth1";
      "nest.depth2";
      "nest.depth3";
      "loop.fixed";
      "loop.triangular";
      "hls.clean";
      "hls.variable_trip";
      "hls.strided";
      "stmt.store";
      "stmt.accum";
      "stmt.reduce";
      "index.direct";
      "index.indirect";
      "affine.multi-term";
      "affine.negative-coeff";
      "affine.const-only";
      "expr.load";
      "expr.const";
      "expr.param";
      "expr.unop";
      "expr.binop";
      "const.negative";
      "const.fractional";
      "op.arith";
      "op.minmax";
      "op.bitwise";
      "op.shift";
      "op.compare";
    ]

  let create () : t = Hashtbl.create 64
  let hit t p = Hashtbl.replace t p (1 + Option.value ~default:0 (Hashtbl.find_opt t p))
  let count t p = Option.value ~default:0 (Hashtbl.find_opt t p)
  let missing t = List.filter (fun p -> not (Hashtbl.mem t p)) productions
  let report t = List.map (fun p -> (p, count t p)) productions

  let fraction t =
    let n = List.length productions in
    float_of_int (n - List.length (missing t)) /. float_of_int n
end

let array_pool = [ "a"; "b"; "c"; "d"; "w" ]
let idx_pool = [ "t" ]
let param_pool = [ "p"; "q" ]
let reduce_pool = [ "acc"; "tot" ]
let var_pool = [ "i"; "j"; "k" ]

let take n l = List.filteri (fun i _ -> i < n) l

(* ------------------------------------------------------------------ *)
(* Affine subscripts                                                   *)
(* ------------------------------------------------------------------ *)

let trip_of ~(loops : Ir.loop list) v =
  Ir.trip_max (List.find (fun (l : Ir.loop) -> l.var = v) loops).trip

(* minimum-zero affine: a negative coefficient's full reach is offset in
   the constant, so the subscript can never go below zero *)
let gen_affine cov rng ~(loops : Ir.loop list) =
  let nterms = Rng.choose rng [ 0; 1; 1; 1; 1; 2; 2 ] in
  let nterms = min nterms (List.length loops) in
  let chosen = take nterms (Rng.shuffle rng loops) in
  let terms =
    List.map
      (fun (l : Ir.loop) -> (l.var, Rng.choose rng [ 1; 1; 1; 1; 2; 3; -1; -2 ]))
      chosen
  in
  let neg_reach =
    List.fold_left
      (fun s (v, c) -> if c < 0 then s + (-c * (trip_of ~loops v - 1)) else s)
      0 terms
  in
  let const = neg_reach + Rng.int rng 4 in
  if terms = [] then Cov.hit cov "affine.const-only";
  if List.length terms > 1 then Cov.hit cov "affine.multi-term";
  if List.exists (fun (_, c) -> c < 0) terms then
    Cov.hit cov "affine.negative-coeff";
  Ir.affine ~const terms

let gen_target cov rng ~loops ~arrays =
  Cov.hit cov "index.direct";
  { Ir.array = Rng.choose rng arrays; index = Ir.Direct (gen_affine cov rng ~loops) }

let gen_load_ref cov rng ~loops ~arrays =
  if Rng.float rng 1.0 < 0.15 then begin
    Cov.hit cov "index.indirect";
    {
      Ir.array = Rng.choose rng arrays;
      index =
        Ir.Indirect
          { idx_array = List.hd idx_pool; at = gen_affine cov rng ~loops };
    }
  end
  else gen_target cov rng ~loops ~arrays

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let gen_const cov rng ~is_float =
  let f =
    if is_float && Rng.float rng 1.0 < 0.5 then
      Rng.choose rng [ 0.5; 1.5; 2.5; 0.125; 3.75; 0.25 ]
    else float_of_int (1 + Rng.int rng 9)
  in
  let f = if Rng.float rng 1.0 < 0.3 then -.f else f in
  if f < 0.0 then Cov.hit cov "const.negative";
  if Float.is_integer f |> not then Cov.hit cov "const.fractional";
  Ir.Const f

let gen_binop cov rng ~is_float =
  let category =
    if is_float then
      Rng.choose_weighted rng
        [ (0.55, `Arith); (0.25, `Minmax); (0.2, `Compare) ]
    else
      Rng.choose_weighted rng
        [
          (0.4, `Arith);
          (0.15, `Minmax);
          (0.2, `Bitwise);
          (0.15, `Shift);
          (0.1, `Compare);
        ]
  in
  match category with
  | `Arith ->
    Cov.hit cov "op.arith";
    Rng.choose rng [ Op.Add; Op.Add; Op.Sub; Op.Mul; Op.Div ]
  | `Minmax ->
    Cov.hit cov "op.minmax";
    Rng.choose rng [ Op.Min; Op.Max ]
  | `Bitwise ->
    Cov.hit cov "op.bitwise";
    Rng.choose rng [ Op.Band; Op.Bor; Op.Bxor ]
  | `Shift ->
    Cov.hit cov "op.shift";
    Rng.choose rng [ Op.Shl; Op.Shr ]
  | `Compare ->
    Cov.hit cov "op.compare";
    Rng.choose rng [ Op.Cmp_lt; Op.Cmp_eq ]

let rec gen_expr cov rng ~depth ~is_float ~loops ~arrays =
  let leaf () =
    match Rng.choose_weighted rng [ (0.55, `Load); (0.25, `Const); (0.2, `Param) ] with
    | `Load ->
      Cov.hit cov "expr.load";
      Ir.Load (gen_load_ref cov rng ~loops ~arrays)
    | `Const ->
      Cov.hit cov "expr.const";
      gen_const cov rng ~is_float
    | `Param ->
      Cov.hit cov "expr.param";
      Ir.Param (Rng.choose rng param_pool)
  in
  if depth >= 3 || Rng.float rng 1.0 < 0.35 then leaf ()
  else if Rng.float rng 1.0 < 0.2 then begin
    Cov.hit cov "expr.unop";
    let op = if is_float then Rng.choose rng [ Op.Sqrt; Op.Abs ] else Op.Abs in
    Ir.Unop (op, gen_expr cov rng ~depth:(depth + 1) ~is_float ~loops ~arrays)
  end
  else begin
    Cov.hit cov "expr.binop";
    let op = gen_binop cov rng ~is_float in
    let lhs = gen_expr cov rng ~depth:(depth + 1) ~is_float ~loops ~arrays in
    let rhs =
      match op with
      (* keep shift amounts small, literal and non-negative *)
      | Op.Shl | Op.Shr -> Ir.Const (float_of_int (1 + Rng.int rng 3))
      | _ -> gen_expr cov rng ~depth:(depth + 1) ~is_float ~loops ~arrays
    in
    Ir.Binop (op, lhs, rhs)
  end

(* ------------------------------------------------------------------ *)
(* Statements, loops, regions                                          *)
(* ------------------------------------------------------------------ *)

let rmw_ops = [ Op.Add; Op.Add; Op.Sub; Op.Mul; Op.Min; Op.Max ]

let gen_stmt cov rng ~is_float ~loops ~arrays =
  match
    Rng.choose_weighted rng [ (0.45, `Store); (0.35, `Accum); (0.2, `Reduce) ]
  with
  | `Store -> (
    let r = gen_target cov rng ~loops ~arrays in
    let e = gen_expr cov rng ~depth:0 ~is_float ~loops ~arrays in
    (* the parser's canonicalization, applied at generation time *)
    let idiom = function
      | Op.Add | Op.Sub | Op.Mul | Op.Min | Op.Max -> true
      | _ -> false
    in
    match e with
    | Ir.Binop (op, Ir.Load r', e') when idiom op && Ir.aref_equal r r' ->
      Cov.hit cov "stmt.accum";
      Ir.Accum (r, op, e')
    | _ ->
      Cov.hit cov "stmt.store";
      Ir.Store (r, e))
  | `Accum ->
    Cov.hit cov "stmt.accum";
    let r = gen_target cov rng ~loops ~arrays in
    Ir.Accum
      (r, Rng.choose rng rmw_ops, gen_expr cov rng ~depth:0 ~is_float ~loops ~arrays)
  | `Reduce ->
    Cov.hit cov "stmt.reduce";
    Ir.Reduce
      ( Rng.choose rng reduce_pool,
        Rng.choose rng rmw_ops,
        gen_expr cov rng ~depth:0 ~is_float ~loops ~arrays )

let gen_loops cov rng =
  let depth = Rng.choose_weighted rng [ (0.3, 1); (0.4, 2); (0.3, 3) ] in
  Cov.hit cov (Printf.sprintf "nest.depth%d" depth);
  List.mapi
    (fun i v ->
      let trip =
        if i > 0 && Rng.float rng 1.0 < 0.35 then begin
          Cov.hit cov "loop.triangular";
          Ir.Triangular (2 + Rng.int rng 5)
        end
        else begin
          Cov.hit cov "loop.fixed";
          Ir.Fixed (2 + Rng.int rng 7)
        end
      in
      { Ir.var = v; trip })
    (take depth var_pool)

let gen_hls cov rng =
  match
    Rng.choose_weighted rng [ (0.5, `Clean); (0.3, `Vt); (0.2, `Strided) ]
  with
  | `Clean ->
    Cov.hit cov "hls.clean";
    Ir.Clean
  | `Vt ->
    Cov.hit cov "hls.variable_trip";
    let tuned_ii = 1 + Rng.int rng 4 in
    Ir.Variable_trip { untuned_ii = tuned_ii + Rng.int rng 8; tuned_ii }
  | `Strided ->
    Cov.hit cov "hls.strided";
    Ir.Strided { untuned_ii = 2 + Rng.int rng 8 }

let gen_region cov rng ~is_float ~arrays ~rname =
  let loops = gen_loops cov rng in
  let nstmts = 1 + Rng.int rng 3 in
  {
    Ir.rname;
    loops;
    body = List.init nstmts (fun _ -> gen_stmt cov rng ~is_float ~loops ~arrays);
    hls = gen_hls cov rng;
  }

(* ------------------------------------------------------------------ *)
(* Array sizing                                                        *)
(* ------------------------------------------------------------------ *)

(* conservative per-array maximum subscript over every region that will
   be emitted (main and tuned): honoring this bound makes the frontend's
   exact bounds enumeration trivially succeed *)
let size_arrays rng (regions : Ir.region list) =
  let need = Hashtbl.create 8 in
  let note arr v =
    Hashtbl.replace need arr (max v (Option.value ~default:0 (Hashtbl.find_opt need arr)))
  in
  List.iter
    (fun (r : Ir.region) ->
      let reach (a : Ir.affine) =
        List.fold_left
          (fun s (v, c) ->
            if c > 0 then s + (c * (trip_of ~loops:r.loops v - 1)) else s)
          a.const a.terms
      in
      let note_ref (ar : Ir.aref) =
        match ar.index with
        | Ir.Direct a -> note ar.array (reach a)
        | Ir.Indirect { idx_array; at } ->
          note idx_array (reach at);
          (* index arrays are zero-initialized in the emitted C, so only
             element 0 of the target is ever dereferenced at runtime;
             still give it honest room *)
          note ar.array 7
      in
      List.iter
        (fun st ->
          Option.iter note_ref (Ir.stmt_store st);
          List.iter note_ref (Ir.stmt_loads st))
        r.body)
    regions;
  List.filter_map
    (fun name ->
      match Hashtbl.find_opt need name with
      | None -> None
      | Some m -> Some (name, m + 1 + Rng.int rng 4))
    (array_pool @ idx_pool)

(* ------------------------------------------------------------------ *)
(* Whole kernels                                                       *)
(* ------------------------------------------------------------------ *)

let dtypes =
  [ Dtype.I8; Dtype.I16; Dtype.I32; Dtype.I64; Dtype.F32; Dtype.F64 ]

let kernel ~cov rng =
  let dtype = Rng.choose rng dtypes in
  let is_float = Dtype.is_float dtype in
  Cov.hit cov (if is_float then "dtype.float" else "dtype.int");
  let arrays_in_use = take (1 + Rng.int rng 3) array_pool in
  let nregions = if Rng.float rng 1.0 < 0.35 then 2 else 1 in
  Cov.hit cov (if nregions = 1 then "region.single" else "region.multi");
  let regions =
    List.init nregions (fun i ->
        gen_region cov rng ~is_float ~arrays:arrays_in_use
          ~rname:(Printf.sprintf "r%d" i))
  in
  let og_tuning =
    if Rng.float rng 1.0 < 0.3 then begin
      Cov.hit cov "kernel.tuned";
      Some
        {
          Ir.desc = Rng.choose rng [ "peel outer"; "unroll 2x2"; "swap streams" ];
          regions =
            [ gen_region cov rng ~is_float ~arrays:arrays_in_use ~rname:"t0" ];
        }
    end
    else begin
      Cov.hit cov "kernel.plain";
      None
    end
  in
  let all_regions =
    regions @ match og_tuning with Some t -> t.Ir.regions | None -> []
  in
  let window_reuse = Rng.float rng 1.0 < 0.25 in
  if window_reuse then Cov.hit cov "flag.window_reuse";
  let needs_broadcast = Rng.float rng 1.0 < 0.2 in
  if needs_broadcast then Cov.hit cov "flag.broadcast";
  {
    Ir.name = Printf.sprintf "fz%04d" (Rng.int rng 10000);
    suite = Rng.choose rng [ Suite.Dsp; Suite.Machsuite; Suite.Vision ];
    dtype;
    lanes = (if Rng.float rng 1.0 < 0.15 then 2 else 1);
    arrays = size_arrays rng all_regions;
    size_desc = Rng.choose rng [ "fuzz"; "8"; "8x8"; "4^2" ];
    regions;
    og_tuning;
    window_reuse;
    needs_broadcast;
  }
