(* The frontend fuzz loop: generate a random well-typed kernel, emit it
   as pragma'd C, parse it back, and push the parsed kernel through the
   real pipeline (mDFG compile -> spatial schedule -> simulation),
   optionally under the fault harness.  The loop's contract mirrors the
   service's isolation contract: a seed may legitimately fail to
   schedule (fabric too small) or hit an injected fault, but a parse
   rejection of emitted source, a structural round-trip mismatch, or any
   exception other than an armed [Fault.Injected] is a violation. *)

open Overgen_workload
module Compile = Overgen_mdfg.Compile
module Spatial = Overgen_scheduler.Spatial
module Sim = Overgen_sim.Sim
module Builder = Overgen_adg.Builder
module Fault = Overgen_fault.Fault
module Rng = Overgen_util.Rng

type summary = {
  runs : int;
  parsed : int;  (** emitted source parsed back successfully *)
  scheduled : int;  (** seeds that placed on the general overlay *)
  schedule_rejected : int;  (** legal "does not fit" outcomes *)
  simulated : int;
  injected : int;  (** armed faults that fired (expected) *)
  escaped : int;  (** exceptions other than armed injections *)
  violations : int;  (** escaped + parse/round-trip failures *)
  coverage : Gen.Cov.t;
  failures : (int * string) list;  (** (seed, what) for the first few *)
}

let max_kept_failures = 10

let fault_points =
  [ Fault.Points.mdfg_compile; Fault.Points.scheduler_schedule_app ]

let run ?(seeds = 100) ?(seed = 0) ?(fault_rate = 0.0) () =
  let sys = Builder.general_overlay () in
  let cov = Gen.Cov.create () in
  let parsed = ref 0
  and scheduled = ref 0
  and schedule_rejected = ref 0
  and simulated = ref 0
  and injected = ref 0
  and escaped = ref 0
  and violations = ref 0
  and failures = ref [] in
  let fail i what =
    incr violations;
    if List.length !failures < max_kept_failures then
      failures := (i, what) :: !failures
  in
  for i = 0 to seeds - 1 do
    let rng = Rng.of_string (Printf.sprintf "fuzz:%d:%d" seed i) in
    let k = Gen.kernel ~cov rng in
    let src = C_source.emit k in
    let pipeline () =
      match Frontend.parse src with
      | Error e ->
        fail i
          (Printf.sprintf "emitted source for %s rejected: %s" k.Ir.name
             (Frontend.error_to_string e))
      | Ok k' ->
        if k' <> k then
          fail i (Printf.sprintf "%s: structural round-trip mismatch" k.Ir.name)
        else begin
          incr parsed;
          let compiled = Compile.compile k' in
          match Spatial.schedule_app sys compiled with
          | Error _ -> incr schedule_rejected
          | Ok schedules ->
            incr scheduled;
            ignore (Sim.run sys schedules);
            incr simulated
        end
    in
    let guarded () =
      try pipeline () with
      | Fault.Injected _ when fault_rate > 0.0 -> incr injected
      | exn ->
        incr escaped;
        fail i
          (Printf.sprintf "%s: escaped exception %s" k.Ir.name
             (Printexc.to_string exn))
    in
    if fault_rate > 0.0 then
      Fault.with_faults
        {
          Fault.seed = seed + i;
          rate = fault_rate;
          transient_fraction = 0.5;
          points = fault_points;
        }
        guarded
    else guarded ()
  done;
  {
    runs = seeds;
    parsed = !parsed;
    scheduled = !scheduled;
    schedule_rejected = !schedule_rejected;
    simulated = !simulated;
    injected = !injected;
    escaped = !escaped;
    violations = !violations;
    coverage = cov;
    failures = List.rev !failures;
  }

let summary_to_string s =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "fuzz: %d seeds | parsed %d | scheduled %d (rejected %d) | simulated \
        %d | injected %d | escaped %d | violations %d | grammar coverage \
        %.0f%%\n"
       s.runs s.parsed s.scheduled s.schedule_rejected s.simulated s.injected
       s.escaped s.violations
       (100.0 *. Gen.Cov.fraction s.coverage));
  (match Gen.Cov.missing s.coverage with
  | [] -> ()
  | m ->
    Buffer.add_string b
      (Printf.sprintf "  uncovered productions: %s\n" (String.concat ", " m)));
  List.iter
    (fun (i, what) -> Buffer.add_string b (Printf.sprintf "  seed %d: %s\n" i what))
    s.failures;
  Buffer.contents b

let ok s = s.violations = 0 && s.escaped = 0

(* The 19-kernel round-trip: emitted source parses back structurally
   equal, and the parsed kernel compiles to the bit-identical mDFG
   content hash in both tuned modes. *)
let round_trip_suite () =
  List.concat_map
    (fun (k : Ir.kernel) ->
      match Frontend.parse (C_source.emit k) with
      | Error e ->
        [ (k.Ir.name, "parse: " ^ Frontend.error_to_string e) ]
      | Ok k' ->
        if k' <> k then [ (k.Ir.name, "structural round-trip mismatch") ]
        else
          List.filter_map
            (fun tuned ->
              let h = Compile.hash_compiled (Compile.compile ~tuned k)
              and h' = Compile.hash_compiled (Compile.compile ~tuned k') in
              if h = h' then None
              else
                Some
                  ( k.Ir.name,
                    Printf.sprintf "compiled hash differs (tuned=%b)" tuned ))
            [ false; true ])
    Kernels.all
