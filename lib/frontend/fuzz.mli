(** The frontend fuzz loop.

    Each seed draws a random well-typed kernel from {!Gen}, emits it with
    {!Overgen_workload.C_source.emit}, parses it back with
    {!Frontend.parse} and pushes the result through mDFG compilation,
    spatial scheduling on the general overlay and simulation — optionally
    under the fault harness.  Failing to fit on the fabric and armed
    fault injections are legal outcomes; a parse rejection, a structural
    round-trip mismatch or any other escaped exception is a violation. *)

type summary = {
  runs : int;
  parsed : int;
  scheduled : int;
  schedule_rejected : int;
  simulated : int;
  injected : int;
  escaped : int;
  violations : int;
  coverage : Gen.Cov.t;
  failures : (int * string) list;
}

val run : ?seeds:int -> ?seed:int -> ?fault_rate:float -> unit -> summary
(** [run ~seeds ~seed ~fault_rate ()] fuzzes [seeds] independent streams
    derived from [seed].  [fault_rate > 0] arms the mDFG-compile and
    scheduler fault points at that per-visit rate. *)

val summary_to_string : summary -> string

val ok : summary -> bool
(** No violations and no escaped exceptions. *)

val round_trip_suite : unit -> (string * string) list
(** Round-trip every suite kernel through emit -> parse, checking
    structural equality and bit-identical compiled hashes in both tuned
    modes; returns (kernel, problem) for each failure — [[]] is success. *)
