(** Seeded generator of random well-typed loop-nest kernels.

    Drives the frontend fuzz loop ({!Fuzz}): every generated kernel is a
    legal input to {!Overgen_workload.C_source.emit} followed by
    {!Frontend.parse} — subscripts stay in bounds over the whole
    iteration space, statements are canonicalized exactly as the parser
    canonicalizes them, and name pools for arrays, parameters and
    reduction targets are disjoint.  All randomness is drawn from an
    explicit {!Overgen_util.Rng} stream, never wall-clock, so a seed
    reproduces its kernel exactly. *)

(** Coverage map over the dialect's grammar productions, to prove the
    generator exercises all of them. *)
module Cov : sig
  type t

  val productions : string list
  (** Every tracked production name. *)

  val create : unit -> t
  val hit : t -> string -> unit
  val count : t -> string -> int

  val missing : t -> string list
  (** Productions never hit so far. *)

  val report : t -> (string * int) list
  (** [(production, hits)] in {!productions} order. *)

  val fraction : t -> float
  (** Covered fraction in [0, 1]. *)
end

val kernel : cov:Cov.t -> Overgen_util.Rng.t -> Overgen_workload.Ir.kernel
(** Draw one random kernel, recording the productions it uses. *)
