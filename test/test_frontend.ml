(* The source frontend: parse (C_source.emit k) must round-trip to a
   structurally equal kernel for the whole suite, rejected inputs must
   yield located errors (never exceptions), and the seeded generator +
   fuzz loop must be deterministic with full grammar coverage. *)

open Overgen_workload
module Frontend = Overgen_frontend.Frontend
module Gen = Overgen_frontend.Gen
module Fuzz = Overgen_frontend.Fuzz
module Compile = Overgen_mdfg.Compile
module Rng = Overgen_util.Rng

let parse_ok src =
  match Frontend.parse src with
  | Ok k -> k
  | Error e -> Alcotest.failf "parse failed: %s" (Frontend.error_to_string e)

(* structural equality is meaningful here: [Ir.kernel] is pure data and
   both sides build affines through the normalizing constructor *)
let test_round_trip_suite () =
  List.iter
    (fun (k : Ir.kernel) ->
      let k' = parse_ok (C_source.emit k) in
      if k' <> k then
        Alcotest.failf "kernel %s does not round-trip structurally\n%s\n-- vs --\n%s"
          k.name (Ir.pretty k) (Ir.pretty k'))
    Kernels.all

let test_round_trip_schedules_bit_identical () =
  List.iter
    (fun (k : Ir.kernel) ->
      let k' = parse_ok (C_source.emit k) in
      List.iter
        (fun tuned ->
          let c = Compile.compile ~tuned k and c' = Compile.compile ~tuned k' in
          Alcotest.(check string)
            (Printf.sprintf "%s tuned=%b mdfg content hash" k.name tuned)
            (Compile.hash_compiled c) (Compile.hash_compiled c'))
        [ false; true ])
    Kernels.all

let test_round_trip_tuned_emission () =
  (* ~tuned:true emission swaps the tuned regions into the main function:
     it must still parse, to a kernel whose regions are the tuned ones *)
  List.iter
    (fun (k : Ir.kernel) ->
      match k.og_tuning with
      | None -> ()
      | Some t ->
        let k' = parse_ok (C_source.emit ~tuned:true k) in
        if k'.regions <> t.regions then
          Alcotest.failf "%s: tuned emission did not parse to the tuned regions"
            k.name)
    Kernels.all

(* ---------------- emitter bug regressions ---------------- *)

let test_affine_negative_rendering () =
  let a = Ir.affine ~const:(-3) [ ("i", 2) ] in
  Alcotest.(check string) "compact" "2*i-3" (Ir.affine_to_string a);
  let b = Ir.affine [ ("i", 1); ("j", -1) ] in
  Alcotest.(check string) "unit negative coeff" "i-j" (Ir.affine_to_string b);
  let c = Ir.affine ~const:4 [ ("j", -1) ] in
  Alcotest.(check string) "leading negative" "-j+4" (Ir.affine_to_string c);
  Alcotest.(check string) "spaced" "2*i - 3"
    (Ir.affine_render ~sep_plus:" + " ~sep_minus:" - " a)

let test_affine_negative_round_trip () =
  (* negative coefficients (reversed walks) and negative constants in
     expressions through emit -> parse; a subscript's minimum stays >= 0 *)
  let k =
    {
      (Kernels.find "solver") with
      Ir.name = "negrt";
      arrays = [ ("a", 16); ("c", 16) ];
      regions =
        [
          {
            Ir.rname = "neg";
            loops = [ { Ir.var = "i"; trip = Ir.Fixed 8 } ];
            body =
              [
                Ir.Store
                  ( {
                      Ir.array = "c";
                      index = Ir.Direct (Ir.affine ~const:7 [ ("i", -1) ]);
                    },
                    Ir.Binop
                      ( Overgen_adg.Op.Add,
                        Ir.Load
                          {
                            Ir.array = "a";
                            index =
                              Ir.Direct (Ir.affine ~const:14 [ ("i", -2) ]);
                          },
                        Ir.Const (-2.5) ) );
              ];
            hls = Ir.Clean;
          };
        ];
      og_tuning = None;
    }
  in
  let src = C_source.emit k in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (* the satellite bug: subscripts used to render as [7 + -1*i]; the
     canonical forms lead with the negative term and join with minus *)
  if not (contains_sub src "og_c[-i + 7]" && contains_sub src "og_a[-2*i + 14]")
  then Alcotest.failf "negative subscripts not rendered canonically:\n%s" src;
  if contains_sub src "+ -1*" || contains_sub src "+-" then
    Alcotest.failf "emitted subscript still joins negatives with '+':\n%s" src;
  let k' = parse_ok src in
  if k' <> k then Alcotest.fail "negative affine kernel does not round-trip"

let test_const_literals_dtype_correct () =
  let solver = Kernels.find "solver" in
  let f64 = { solver with Ir.name = "cf" } in
  let with_body body =
    {
      f64 with
      Ir.regions =
        [
          {
            Ir.rname = "r";
            loops = [ { Ir.var = "i"; trip = Ir.Fixed 4 } ];
            body;
            hls = Ir.Clean;
          };
        ];
      arrays = [ ("x", 8) ];
      og_tuning = None;
    }
  in
  let st e =
    Ir.Store ({ Ir.array = "x"; index = Ir.Direct (Ir.affine [ ("i", 1) ]) }, e)
  in
  let k =
    with_body [ st (Ir.Binop (Overgen_adg.Op.Div, Ir.Const 1.0, Ir.Const 2.0)) ]
  in
  let src = C_source.emit k in
  (* a float-dtype kernel must never emit bare C int literals *)
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  if not (contains_sub src "(1.0 / 2.0)") then
    Alcotest.failf "float consts emitted wrong:\n%s" src;
  let k' = parse_ok src in
  if k' <> k then Alcotest.fail "float const kernel does not round-trip";
  (* huge integer-valued floats must not go through int_of_float *)
  let huge = 1e18 in
  let k2 = with_body [ st (Ir.Const huge) ] in
  let k2' = parse_ok (C_source.emit k2) in
  (match List.hd (List.hd k2'.Ir.regions).Ir.body with
  | Ir.Store (_, Ir.Const f) ->
    Alcotest.(check (float 0.0)) "huge const survives" huge f
  | _ -> Alcotest.fail "unexpected lowering of huge const");
  Alcotest.(check string) "pretty guards int_of_float" "1e+18"
    (Ir.const_to_string huge)

let test_triangular_bound_emitted () =
  let cholesky = Kernels.find "cholesky" in
  let src = C_source.emit cholesky in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  if not (contains_sub src "OG_TRI(j, 48)") then
    Alcotest.failf "triangular loop lost its dependent bound:\n%s" src;
  if not (contains_sub src "OG_TRI(i, 48)") then
    Alcotest.fail "inner triangular loop should ride the enclosing variable"

(* ---------------- located errors, no exceptions ---------------- *)

let located_error ?(min_line = 1) src expect_sub =
  match Frontend.parse src with
  | Ok _ -> Alcotest.failf "expected a parse error (%s)" expect_sub
  | Error e ->
    let msg = Frontend.error_to_string e in
    let contains_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    if not (contains_sub msg expect_sub) then
      Alcotest.failf "error %S does not mention %S" msg expect_sub;
    Alcotest.(check bool) "error is located" true (e.Frontend.line >= min_line)

let minimal_src body =
  Printf.sprintf
    {|#pragma dsa kernel name(t) suite(dsp) dtype(f64) lanes(1) size(4)
static double og_x[8];
static double og_y[8];
void t_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(r) hls(clean)
  for (int i = 0; i < 4; ++i) {
%s
  }
}
}
int main(void) { t_kernel(); return 0; }
|}
    body

let replace_once ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i = if i + m > n then None
    else if String.sub s i m = sub then Some i else find (i + 1) in
  match find 0 with
  | None -> s
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)

let test_error_unterminated_pragma () =
  located_error
    (replace_once ~sub:"name(t)" ~by:"name(t"
       (minimal_src "    og_x[i] = og_y[i];"))
    "unterminated pragma"

let test_error_non_affine_subscript () =
  located_error (minimal_src "    og_x[i*i] = og_y[i];") "non-affine";
  located_error (minimal_src "    og_x[i] = og_y[i * i];") "non-affine"

let test_error_unknown_op () =
  located_error (minimal_src "    og_x[i] = frobnicate(og_y[i]);") "unknown op";
  located_error (minimal_src "    og_x[i] = select(og_y[i], og_y[i]);")
    "not expressible"

let test_error_misc_located () =
  located_error "int x;" "missing '#pragma dsa kernel";
  (* the bounds check runs on the lowered kernel, after locations *)
  located_error ~min_line:0 (minimal_src "    og_x[i+9] = og_y[i];") "can reach";
  located_error (minimal_src "    og_z[i] = og_y[i];") "undeclared array";
  located_error (minimal_src "    og_x[j] = og_y[i];") "not an induction";
  located_error (minimal_src "    og_x[i] = i;") "outside a subscript";
  (* exceptions never escape, even on garbage *)
  List.iter
    (fun junk ->
      match Frontend.parse junk with
      | Ok _ -> Alcotest.fail "garbage parsed"
      | Error _ -> ())
    [ ""; "\x00\x01\x02"; "void"; "#pragma dsa kernel name()"; "{{{{" ]

let test_source_name () =
  let src = C_source.emit (Kernels.find "stencil-3d") in
  Alcotest.(check (option string)) "source_name" (Some "stencil-3d")
    (Frontend.source_name src);
  Alcotest.(check (option string)) "no pragma" None (Frontend.source_name "int x;")

(* ---------------- generator + fuzz loop ---------------- *)

let test_gen_deterministic () =
  let gen seed =
    let cov = Gen.Cov.create () in
    let rng = Rng.of_string (Printf.sprintf "gen:%d" seed) in
    List.init 20 (fun _ -> Gen.kernel ~cov rng)
  in
  let a = gen 7 and b = gen 7 and c = gen 8 in
  Alcotest.(check bool) "same seed, same kernels" true (a = b);
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_gen_round_trips () =
  let cov = Gen.Cov.create () in
  let rng = Rng.of_string "gen-roundtrip" in
  for i = 0 to 199 do
    let k = Gen.kernel ~cov rng in
    let src = C_source.emit k in
    match Frontend.parse src with
    | Error e ->
      Alcotest.failf "generated kernel %d (%s) rejected: %s\n%s" i k.Ir.name
        (Frontend.error_to_string e) src
    | Ok k' ->
      if k' <> k then
        Alcotest.failf "generated kernel %d (%s) does not round-trip" i
          k.Ir.name
  done;
  (* 200 draws must exercise every grammar production the map tracks *)
  match Gen.Cov.missing cov with
  | [] -> ()
  | missing ->
    Alcotest.failf "uncovered productions after 200 kernels: %s"
      (String.concat ", " missing)

let test_fuzz_smoke () =
  let s = Fuzz.run ~seeds:50 ~seed:11 () in
  Alcotest.(check int) "every seed ran" 50 s.Fuzz.runs;
  Alcotest.(check int) "no escaped exceptions" 0 s.Fuzz.escaped;
  Alcotest.(check int) "no invariant violations" 0 s.Fuzz.violations;
  Alcotest.(check bool) "schedules happened" true (s.Fuzz.scheduled > 0)

let test_fuzz_with_faults () =
  let s = Fuzz.run ~seeds:40 ~seed:3 ~fault_rate:0.3 () in
  Alcotest.(check int) "no escaped exceptions under faults" 0 s.Fuzz.escaped;
  Alcotest.(check int) "no invariant violations under faults" 0
    s.Fuzz.violations;
  Alcotest.(check bool) "faults actually injected" true (s.Fuzz.injected > 0)

(* the test binary runs from the project root under [dune exec] and from
   [_build/default/test] under [dune runtest]; resolve data dirs from
   either *)
let data_dir name =
  if Sys.file_exists name then name else Filename.concat "test" name

(* every committed crasher stays a located error, never an exception *)
let test_corpus_rejects_cleanly () =
  let dir = data_dir "frontend-corpus" in
  let files =
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".c")
      |> List.sort String.compare
    else []
  in
  Alcotest.(check bool) "corpus present" true (files <> []);
  List.iter
    (fun f ->
      let ic = open_in_bin (Filename.concat dir f) in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Frontend.parse src with
      | Ok _ -> Alcotest.failf "corpus file %s unexpectedly parsed" f
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%s yields a located error" f)
          true
          (e.Frontend.line >= 0 && e.Frontend.msg <> ""))
    files

(* committed golden sources: the emitter reproduces them exactly, and
   they parse back to the suite kernels *)
let test_golden_sources () =
  let dir = data_dir "frontend-golden" in
  Alcotest.(check bool) "golden dir present" true
    (Sys.file_exists dir && Sys.is_directory dir);
  List.iter
    (fun (k : Ir.kernel) ->
      let path = Filename.concat dir (C_source.fn_name k ^ ".c") in
      Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path);
      let ic = open_in_bin path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) (path ^ " matches emitter") src (C_source.emit k);
      let k' = parse_ok src in
      if k' <> k then Alcotest.failf "%s does not parse back to %s" path k.name)
    Kernels.all

let tests =
  [
    Alcotest.test_case "round-trip: all 19 suite kernels" `Quick
      test_round_trip_suite;
    Alcotest.test_case "round-trip: schedules bit-identical" `Slow
      test_round_trip_schedules_bit_identical;
    Alcotest.test_case "round-trip: tuned emission" `Quick
      test_round_trip_tuned_emission;
    Alcotest.test_case "affine: negative rendering canonical" `Quick
      test_affine_negative_rendering;
    Alcotest.test_case "affine: negative round-trip" `Quick
      test_affine_negative_round_trip;
    Alcotest.test_case "consts: dtype-correct literals" `Quick
      test_const_literals_dtype_correct;
    Alcotest.test_case "triangular: dependent bound emitted" `Quick
      test_triangular_bound_emitted;
    Alcotest.test_case "errors: unterminated pragma" `Quick
      test_error_unterminated_pragma;
    Alcotest.test_case "errors: non-affine subscript" `Quick
      test_error_non_affine_subscript;
    Alcotest.test_case "errors: unknown op" `Quick test_error_unknown_op;
    Alcotest.test_case "errors: located, never exceptions" `Quick
      test_error_misc_located;
    Alcotest.test_case "source_name peek" `Quick test_source_name;
    Alcotest.test_case "gen: deterministic in the seed" `Quick
      test_gen_deterministic;
    Alcotest.test_case "gen: 200 kernels round-trip + full coverage" `Slow
      test_gen_round_trips;
    Alcotest.test_case "fuzz: clean pipeline smoke" `Slow test_fuzz_smoke;
    Alcotest.test_case "fuzz: under fault injection" `Slow
      test_fuzz_with_faults;
    Alcotest.test_case "corpus: crashers reject cleanly" `Quick
      test_corpus_rejects_cleanly;
    Alcotest.test_case "golden: emitted sources committed" `Quick
      test_golden_sources;
  ]
