open Overgen_adg
open Overgen_workload
open Overgen_mdfg
open Overgen_scheduler

let general () = Builder.general_overlay ()

let schedule_kernel ?(tuned = false) sys name =
  let k = Kernels.find name in
  let c = Compile.compile ~tuned k in
  Spatial.schedule_app sys c

let ok_schedules sys name =
  match schedule_kernel sys name with
  | Ok s -> s
  | Error e -> Alcotest.failf "%s failed to schedule: %s" name e

let test_all_kernels_schedule_on_general () =
  let sys = general () in
  List.iter
    (fun (k : Ir.kernel) ->
      match schedule_kernel sys k.name with
      | Ok scheds ->
        Alcotest.(check int)
          (k.name ^ " one schedule per region")
          (List.length (Kernels.regions_for ~tuned:false k))
          (List.length scheds)
      | Error e -> Alcotest.failf "%s: %s" k.name e)
    Kernels.all

let test_schedules_validate () =
  let sys = general () in
  List.iter
    (fun (k : Ir.kernel) ->
      List.iter
        (fun s ->
          match Schedule.validate s sys with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s invalid: %s" k.name e)
        (ok_schedules sys k.name))
    Kernels.all

let test_dedicated_pes () =
  (* no PE hosts two instructions, within or across regions of one app *)
  let sys = general () in
  let scheds = ok_schedules sys "cholesky" in
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (s : Schedule.t) ->
      Schedule.Imap.iter
        (fun _ pe ->
          Alcotest.(check bool) "pe not shared" false (Hashtbl.mem seen pe);
          Hashtbl.replace seen pe ())
        s.inst_pe)
    scheds

let test_ports_not_shared_across_regions () =
  let sys = general () in
  let scheds = ok_schedules sys "solver" in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (s : Schedule.t) ->
      Schedule.Imap.iter
        (fun _ hw ->
          Alcotest.(check bool) "port not shared" false (Hashtbl.mem seen hw);
          Hashtbl.replace seen hw ())
        s.port_map)
    scheds

let test_fir_uses_recurrence_engine () =
  let sys = general () in
  let scheds = ok_schedules sys "fir" in
  let s = List.hd scheds in
  Alcotest.(check bool) "recurrence streams bound" true (s.rec_streams <> []);
  List.iter
    (fun (_, e) ->
      match Adg.comp_exn sys.adg e with
      | Comp.Engine { kind = Comp.Rec; _ } -> ()
      | _ -> Alcotest.fail "rec stream on non-rec engine")
    s.rec_streams

let test_indirect_arrays_on_indirect_engine () =
  let sys = general () in
  let scheds = ok_schedules sys "crs" in
  let s = List.hd scheds in
  let x_engine = List.assoc "x" s.array_engine in
  match Adg.comp_exn sys.adg x_engine with
  | Comp.Engine e -> Alcotest.(check bool) "indirect support" true e.indirect
  | _ -> Alcotest.fail "x not on an engine"

let test_routes_start_and_end_correctly () =
  let sys = general () in
  let scheds = ok_schedules sys "mm" in
  List.iter
    (fun (s : Schedule.t) ->
      List.iter
        (fun ((src, dst), (r : Schedule.route)) ->
          (match r.hops with
          | [] -> Alcotest.fail "empty route"
          | first :: _ ->
            let expected =
              match (Dfg.node s.variant.dfg src).kind with
              | Dfg.Input _ -> Schedule.Imap.find_opt src s.port_map
              | _ -> Schedule.Imap.find_opt src s.inst_pe
            in
            Alcotest.(check (option int)) "route starts at src" (Some first) expected);
          let last = List.nth r.hops (List.length r.hops - 1) in
          let expected_dst =
            match (Dfg.node s.variant.dfg dst).kind with
            | Dfg.Output _ -> Schedule.Imap.find_opt dst s.port_map
            | _ -> Schedule.Imap.find_opt dst s.inst_pe
          in
          Alcotest.(check (option int)) "route ends at dst" (Some last) expected_dst)
        s.routes)
    scheds

let test_ii_at_least_one () =
  let sys = general () in
  List.iter
    (fun (k : Ir.kernel) ->
      List.iter
        (fun (s : Schedule.t) ->
          Alcotest.(check bool) "ii >= 1" true (s.ii >= 1);
          Alcotest.(check bool) "ipc positive" true (Schedule.ipc s > 0.0))
        (ok_schedules sys k.name))
    Kernels.all

let test_repair_after_harmless_change () =
  let sys = general () in
  let scheds = ok_schedules sys "fir" in
  (* adding an unrelated PE must not break anything: fast-path repair *)
  let adg, _ =
    Adg.add sys.adg (Comp.Pe (Comp.default_pe (Op.Cap.of_ops [ Op.Add ] [ Dtype.I64 ])))
  in
  let sys' = Sys_adg.with_adg sys adg in
  match Spatial.repair sys' scheds with
  | Ok scheds' -> Alcotest.(check int) "same count" (List.length scheds) (List.length scheds')
  | Error e -> Alcotest.failf "repair failed: %s" e

let test_repair_reroutes_after_switch_removal () =
  let sys = general () in
  let scheds = ok_schedules sys "accumulate" in
  (* remove one switch used by a route, after adding bypass edges around it
     (what node collapsing does) *)
  let used =
    List.concat_map (fun (s : Schedule.t) -> Schedule.used_edges s) scheds
  in
  let victim =
    List.find_map
      (fun (a, b) ->
        match (Adg.comp_exn sys.adg a, Adg.comp_exn sys.adg b) with
        | Comp.Switch _, Comp.Switch _ -> Some b
        | _ -> None)
      used
  in
  match victim with
  | None -> () (* degenerate mapping: nothing to test *)
  | Some sw ->
    (* connect the victim's neighbours directly, then delete it *)
    let adg =
      List.fold_left
        (fun adg p ->
          List.fold_left
            (fun adg n ->
              if p <> n && not (Adg.mem_edge adg p n) then
                try Adg.add_edge adg p n with Invalid_argument _ -> adg
              else adg)
            adg (Adg.succs sys.adg sw))
        sys.adg (Adg.preds sys.adg sw)
    in
    let adg = Adg.remove_node adg sw in
    let sys' = Sys_adg.with_adg sys adg in
    (match Spatial.repair sys' scheds with
    | Ok scheds' ->
      List.iter
        (fun s ->
          match Schedule.validate s sys' with
          | Ok () -> ()
          | Error e -> Alcotest.failf "repaired schedule invalid: %s" e)
        scheds'
    | Error e -> Alcotest.failf "repair should reroute: %s" e)

let test_repair_fails_when_pe_capability_lost () =
  let sys = general () in
  let scheds = ok_schedules sys "mm" in
  let s = List.hd scheds in
  (* strip the capability of a PE actually used by an instruction *)
  let inst, pe = Schedule.Imap.min_binding s.inst_pe in
  let op, dtype =
    match (Dfg.node s.variant.dfg inst).kind with
    | Dfg.Inst { op; dtype; _ } -> (op, dtype)
    | _ -> Alcotest.fail "inst expected"
  in
  let adg =
    match Adg.comp_exn sys.adg pe with
    | Comp.Pe p ->
      Adg.set_comp sys.adg pe (Comp.Pe { p with caps = Op.Cap.remove (op, dtype) p.caps })
    | _ -> Alcotest.fail "pe expected"
  in
  let sys' = Sys_adg.with_adg sys adg in
  (match Schedule.validate s sys' with
  | Ok () -> Alcotest.fail "validation should notice the missing capability"
  | Error _ -> ());
  match Spatial.repair sys' scheds with
  | Ok _ -> Alcotest.fail "repair cannot fix placements"
  | Error _ -> ()

let test_relaxation_on_small_fabric () =
  (* a tiny fabric forces fallback to a narrow variant, not failure *)
  let caps = Op.Cap.of_ops [ Op.Add; Op.Mul; Op.Acc ] [ Dtype.I16 ] in
  let adg =
    Builder.mesh ~rows:2 ~cols:3 ~caps ~sw_width_bits:64 ~width_bits:64
      ~in_port_widths:[ 16; 16; 8 ] ~out_port_widths:[ 16; 8 ]
      ~engines:
        [ Comp.default_engine Comp.Dma; Comp.default_engine Comp.Rec;
          Comp.default_engine Comp.Reg ]
  in
  let sys = Sys_adg.make adg System.default in
  match schedule_kernel sys "acc-sqr" with
  | Ok [ s ] ->
    Alcotest.(check bool) "relaxed below max unroll" true (s.variant.unroll <= 8)
  | Ok _ -> Alcotest.fail "one region expected"
  | Error e -> Alcotest.failf "should relax, not fail: %s" e

let test_compute_ii_respects_port_width () =
  let sys = general () in
  let scheds = ok_schedules sys "stencil-2d" in
  let s = List.hd scheds in
  (* stencil-2d at unroll u needs 9+ lanes through one port; ii must cover *)
  let needed =
    Schedule.Imap.fold
      (fun dfg_port hw acc ->
        let w =
          match (Dfg.node s.variant.dfg dfg_port).kind with
          | Dfg.Input { width_bytes; _ } | Dfg.Output { width_bytes } -> width_bytes
          | _ -> 0
        in
        let hw_w =
          match Adg.comp_exn sys.adg hw with
          | Comp.In_port p | Comp.Out_port p -> p.width_bytes
          | _ -> 1
        in
        max acc (Overgen_util.Stats.div_ceil (max 1 w) (max 1 hw_w)))
      s.port_map 1
  in
  Alcotest.(check bool) "ii >= port pressure" true (s.ii >= needed)

let prop_schedule_deterministic =
  QCheck.Test.make ~name:"scheduling is deterministic" ~count:3 QCheck.unit
    (fun () ->
      let sys = general () in
      match (schedule_kernel sys "fir", schedule_kernel sys "fir") with
      | Ok a, Ok b ->
        List.for_all2
          (fun (x : Schedule.t) (y : Schedule.t) ->
            x.ii = y.ii
            && Schedule.Imap.equal ( = ) x.inst_pe y.inst_pe
            && Schedule.Imap.equal ( = ) x.port_map y.port_map)
          a b
      | _ -> false)

(* Regression: [Spatial.restore] used to alias the snapshot's usage
   tables into the live context, so scheduling after a restore corrupted
   the snapshot and a second restore resurrected the corrupted state.
   Restoring the same snapshot twice must reproduce identical schedules. *)
let test_double_restore () =
  let sys = general () in
  let compiled = Compile.compile ~tuned:false (Kernels.find "fir") in
  let variant =
    match compiled.Compile.per_region with
    | (v :: _) :: _ -> v
    | _ -> Alcotest.fail "fir compiled to no variants"
  in
  let ctx = Spatial.fresh_ctx sys in
  let snap = Spatial.snapshot ctx in
  let attempt tag =
    match Spatial.schedule_variant ctx variant with
    | Ok s -> s
    | Error e -> Alcotest.failf "%s schedule failed: %s" tag e
  in
  let s1 = attempt "first" in
  Spatial.restore ctx snap;
  let s2 = attempt "after first restore" in
  Spatial.restore ctx snap;
  let s3 = attempt "after second restore" in
  let same tag (a : Schedule.t) (b : Schedule.t) =
    Alcotest.(check int) (tag ^ ": same ii") a.ii b.ii;
    Alcotest.(check bool)
      (tag ^ ": same placements")
      true
      (Schedule.Imap.equal ( = ) a.inst_pe b.inst_pe)
  in
  same "restore 1" s1 s2;
  same "restore 2" s1 s3

(* ------------------------------------------------------------------ *)
(* Undo-log rollback properties                                        *)
(* ------------------------------------------------------------------ *)

module Rng = Overgen_util.Rng
module Obs = Overgen_obs.Obs
module Mutate = Overgen_dse.Mutate
module Dse = Overgen_dse.Dse

let variant_pool () =
  List.concat_map
    (fun name ->
      let c = Compile.compile ~tuned:false (Kernels.find name) in
      List.concat c.Compile.per_region)
    [ "fir"; "mm"; "accumulate" ]

let first_variant name =
  let c = Compile.compile ~tuned:false (Kernels.find name) in
  match c.Compile.per_region with
  | (v :: _) :: _ -> v
  | _ -> Alcotest.failf "%s compiled to no variants" name

(* The copy-based oracle: [debug_state] captured at snapshot time is
   exactly what a five-table Hashtbl.copy snapshot would have preserved.
   Drive random mutate/snapshot/restore/double-restore sequences and
   require every restore to reproduce the dump taken with its mark. *)
let prop_undo_log_matches_oracle =
  QCheck.Test.make ~name:"undo-log restore matches state captured at snapshot"
    ~count:12
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let sys = general () in
      let variants = variant_pool () in
      let nv = List.length variants in
      let rng = Rng.create seed in
      let ctx = Spatial.fresh_ctx sys in
      let stack = ref [ (Spatial.snapshot ctx, Spatial.debug_state ctx) ] in
      let check_restore (snap, dump) =
        Spatial.restore ctx snap;
        if Spatial.debug_state ctx <> dump then
          QCheck.Test.fail_report "restore diverged from snapshot-time state"
      in
      for _ = 1 to 60 do
        match Rng.int rng 4 with
        | 0 -> stack := (Spatial.snapshot ctx, Spatial.debug_state ctx) :: !stack
        | 1 | 2 ->
          let v = List.nth variants (Rng.int rng nv) in
          ignore (Spatial.schedule_variant ctx v)
        | _ -> (
          match !stack with
          | [] -> ()
          | top :: rest ->
            check_restore top;
            (* restoring the same mark again must be a no-op *)
            if Rng.int rng 2 = 0 then check_restore top;
            if Rng.int rng 2 = 0 then stack := rest)
      done;
      (* unwind the remaining marks in LIFO order *)
      List.iter check_restore !stack;
      true)

let test_stale_snapshot_raises () =
  let sys = general () in
  let variant = first_variant "fir" in
  let ctx = Spatial.fresh_ctx sys in
  let a = Spatial.snapshot ctx in
  (match Spatial.schedule_variant ctx variant with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "schedule failed: %s" e);
  let b = Spatial.snapshot ctx in
  Spatial.restore ctx a;
  (* [b] marks a log position that no longer exists *)
  (match Spatial.restore ctx b with
  | () -> Alcotest.fail "restoring a popped-past mark must raise"
  | exception Invalid_argument _ -> ());
  (* rebuild the log past [b]'s position: the mark's offset exists again,
     but the entries there are younger than the mark, so it is still stale *)
  (match Spatial.schedule_variant ctx variant with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "reschedule failed: %s" e);
  match Spatial.restore ctx b with
  | () -> Alcotest.fail "restoring a mark into a rebuilt log must raise"
  | exception Invalid_argument _ -> ()

let test_rollback_counter_and_free_noop () =
  let sys = general () in
  let variant = first_variant "fir" in
  let ctx = Spatial.fresh_ctx sys in
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  let v () =
    Obs.Metrics.counter_value
      (Obs.Metrics.counter Obs.Metrics.default
         "overgen_scheduler_rollback_entries_total")
  in
  let before = v () in
  let snap = Spatial.snapshot ctx in
  Spatial.restore ctx snap;
  Alcotest.(check int) "immediate restore pops no entries" before (v ());
  (match Spatial.schedule_variant ctx variant with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "schedule failed: %s" e);
  Spatial.restore ctx snap;
  Alcotest.(check bool) "rollback entries counted" true (v () > before)

(* ------------------------------------------------------------------ *)
(* Incremental rescheduling properties                                 *)
(* ------------------------------------------------------------------ *)

let same_schedules a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Schedule.t) (y : Schedule.t) ->
         x.ii = y.ii
         && x.max_link_share = y.max_link_share
         && x.skew_penalty = y.skew_penalty
         && Schedule.Imap.equal ( = ) x.inst_pe y.inst_pe
         && Schedule.Imap.equal ( = ) x.port_map y.port_map
         && x.array_engine = y.array_engine
         && x.rec_streams = y.rec_streams
         && x.reg_streams = y.reg_streams
         && x.routes = y.routes)
       a b

(* Under schedule-preserving mutations, [reschedule] must be bit-identical
   to the legacy repair-else-full composition whenever it takes the same
   tier, and a valid complete mapping when the incremental tier fires. *)
let prop_reschedule_matches_legacy =
  QCheck.Test.make
    ~name:"reschedule is bit-identical to repair-else-full under preserve"
    ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let sys = general () in
      let compiled = Compile.compile ~tuned:false (Kernels.find "mm") in
      let prior =
        match Spatial.schedule_app sys compiled with
        | Ok s -> s
        | Error e -> QCheck.Test.fail_reportf "schedule failed: %s" e
      in
      let rng = Rng.create seed in
      let usage = Mutate.usage_of prior in
      let caps_pool = Dse.caps_pool [ compiled ] in
      let adg', _desc = Mutate.propose rng ~preserve:true ~caps_pool sys.adg usage in
      let sys' = Sys_adg.with_adg sys adg' in
      let legacy =
        match Spatial.repair sys' prior with
        | Ok s -> `Repaired s
        | Error _ -> (
          match Spatial.schedule_app sys' compiled with
          | Ok s -> `Full s
          | Error _ -> `None)
      in
      match (Spatial.reschedule sys' compiled ~prior, legacy) with
      | Error _, `None -> true
      | Ok (s, Spatial.Repaired), `Repaired l -> same_schedules s l
      | Ok (s, Spatial.Full), `Full l -> same_schedules s l
      | Ok (s, Spatial.Incremental), _ ->
        (* repair could not fix it but the incremental tier did: the result
           must still be one valid schedule per region *)
        List.length s = List.length prior
        && List.for_all (fun sc -> Result.is_ok (Schedule.validate sc sys')) s
      | Ok (_, Spatial.Repaired), _ ->
        QCheck.Test.fail_report "reschedule repaired where legacy repair failed"
      | Ok (_, Spatial.Full), _ ->
        QCheck.Test.fail_report "full fallback diverged from schedule_app"
      | Error _, _ ->
        QCheck.Test.fail_report "reschedule failed where legacy succeeded")

let test_incremental_replaces_only_broken () =
  let sys = general () in
  let compiled = Compile.compile ~tuned:false (Kernels.find "mm") in
  let prior =
    match Spatial.schedule_app sys compiled with
    | Ok s -> s
    | Error e -> Alcotest.failf "schedule failed: %s" e
  in
  let s = List.hd prior in
  (* strip the capability of one used PE: repair cannot fix a broken
     placement, the incremental tier re-places just that instruction *)
  let inst, pe = Schedule.Imap.min_binding s.inst_pe in
  let op, dtype =
    match (Dfg.node s.variant.dfg inst).kind with
    | Dfg.Inst { op; dtype; _ } -> (op, dtype)
    | _ -> Alcotest.fail "inst expected"
  in
  let adg =
    match Adg.comp_exn sys.adg pe with
    | Comp.Pe p ->
      Adg.set_comp sys.adg pe
        (Comp.Pe { p with caps = Op.Cap.remove (op, dtype) p.caps })
    | _ -> Alcotest.fail "pe expected"
  in
  let sys' = Sys_adg.with_adg sys adg in
  Alcotest.(check bool)
    "repair alone cannot fix the lost placement" true
    (Result.is_error (Spatial.repair sys' prior));
  match Spatial.reschedule sys' compiled ~prior with
  | Error e -> Alcotest.failf "reschedule failed: %s" e
  | Ok (scheds, outcome) ->
    Alcotest.(check bool)
      "incremental tier used" true
      (outcome = Spatial.Incremental);
    List.iter
      (fun sc ->
        match Schedule.validate sc sys' with
        | Ok () -> ()
        | Error e -> Alcotest.failf "rescheduled schedule invalid: %s" e)
      scheds;
    (* dedicated PEs: only [inst] sat on the stripped PE, so every other
       placement must be pinned exactly where it was *)
    List.iter2
      (fun (old_s : Schedule.t) (new_s : Schedule.t) ->
        Schedule.Imap.iter
          (fun i old_pe ->
            if old_pe <> pe then
              Alcotest.(check (option int))
                "intact placement pinned" (Some old_pe)
                (Schedule.Imap.find_opt i new_s.inst_pe))
          old_s.inst_pe)
      prior scheds

let tests =
  [
    Alcotest.test_case "all kernels schedule on general" `Quick
      test_all_kernels_schedule_on_general;
    Alcotest.test_case "double restore" `Quick test_double_restore;
    Alcotest.test_case "schedules validate" `Quick test_schedules_validate;
    Alcotest.test_case "dedicated PEs" `Quick test_dedicated_pes;
    Alcotest.test_case "ports not shared" `Quick test_ports_not_shared_across_regions;
    Alcotest.test_case "fir recurrence engine" `Quick test_fir_uses_recurrence_engine;
    Alcotest.test_case "crs indirect engine" `Quick test_indirect_arrays_on_indirect_engine;
    Alcotest.test_case "route endpoints" `Quick test_routes_start_and_end_correctly;
    Alcotest.test_case "ii sanity" `Quick test_ii_at_least_one;
    Alcotest.test_case "repair fast path" `Quick test_repair_after_harmless_change;
    Alcotest.test_case "repair reroutes" `Quick test_repair_reroutes_after_switch_removal;
    Alcotest.test_case "repair detects lost caps" `Quick test_repair_fails_when_pe_capability_lost;
    Alcotest.test_case "relax on small fabric" `Quick test_relaxation_on_small_fabric;
    Alcotest.test_case "ii covers port width" `Quick test_compute_ii_respects_port_width;
    QCheck_alcotest.to_alcotest prop_schedule_deterministic;
    QCheck_alcotest.to_alcotest prop_undo_log_matches_oracle;
    Alcotest.test_case "stale snapshot raises" `Quick test_stale_snapshot_raises;
    Alcotest.test_case "rollback counter / free no-op restore" `Quick
      test_rollback_counter_and_free_noop;
    QCheck_alcotest.to_alcotest prop_reschedule_matches_legacy;
    Alcotest.test_case "incremental re-places only broken" `Quick
      test_incremental_replaces_only_broken;
  ]
