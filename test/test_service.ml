(* The compile-service subsystem: LRU mechanics, the registry, the
   content-addressed schedule cache (including negative caching and the
   cache-correctness invariant that served schedules validate against the
   overlay), backpressure, and deterministic-vs-parallel equivalence. *)

open Overgen_adg
open Overgen_workload
module Lru = Overgen_service.Lru
module Registry = Overgen_service.Registry
module Cache = Overgen_service.Cache
module Service = Overgen_service.Service
module Trace = Overgen_service.Trace
module Telemetry = Overgen_service.Telemetry
module Schedule = Overgen_scheduler.Schedule
module Oracle = Overgen_fpga.Oracle
module Mutate = Overgen_dse.Mutate
module Rng = Overgen_util.Rng
module Fault = Overgen_fault.Fault
module Pool = Overgen_par.Pool

let model = lazy (Overgen.train_model ~seed:21 ())

let general =
  lazy
    (match Overgen.general ~model:(Lazy.force model) Kernels.all with
    | Ok o -> o
    | Error e -> failwith ("general overlay: " ^ e))

(* ---------------- LRU ---------------- *)

let test_lru_basics () =
  let l = Lru.create ~capacity:3 in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  Lru.add l "c" 3;
  Alcotest.(check int) "full" 3 (Lru.length l);
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find l "a");
  (* "a" just promoted; adding "d" must evict "b", the LRU entry *)
  Lru.add l "d" 4;
  Alcotest.(check bool) "b evicted" false (Lru.mem l "b");
  Alcotest.(check bool) "a survived via promote" true (Lru.mem l "a");
  Alcotest.(check int) "one eviction" 1 (Lru.evictions l);
  Alcotest.(check (list string))
    "recency order MRU-first" [ "d"; "a"; "c" ]
    (List.map fst (Lru.to_list l))

let test_lru_replace_and_capacity () =
  let l = Lru.create ~capacity:2 in
  Lru.add l 1 "x";
  Lru.add l 1 "y";
  Alcotest.(check int) "replace keeps length 1" 1 (Lru.length l);
  Alcotest.(check (option string)) "replaced value" (Some "y") (Lru.find l 1);
  Alcotest.(check int) "replace is not an eviction" 0 (Lru.evictions l);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity < 1") (fun () ->
      ignore (Lru.create ~capacity:0))

(* ---------------- registry ---------------- *)

let test_registry () =
  let r = Registry.create () in
  let o = Lazy.force general in
  (match Registry.register r ~name:"g1" o with
  | Ok e ->
    Alcotest.(check string) "fingerprint matches core" (Overgen.fingerprint o)
      e.Registry.fingerprint
  | Error e -> Alcotest.failf "register: %s" e);
  (match Registry.register r ~name:"g1" o with
  | Ok _ -> Alcotest.fail "duplicate name accepted"
  | Error _ -> ());
  (* a second name for the same structure shares the fingerprint *)
  (match Registry.register r ~name:"g2" o with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "register alias: %s" e);
  Alcotest.(check (list string)) "registration order" [ "g1"; "g2" ]
    (Registry.names r);
  Alcotest.(check int) "aliases share the fingerprint" 2
    (List.length (Registry.find_fingerprint r (Overgen.fingerprint o)));
  Alcotest.(check bool) "find" true (Registry.find r "g2" <> None);
  Alcotest.(check bool) "find missing" true (Registry.find r "nope" = None)

(* ---------------- cache ---------------- *)

let test_cache_counting_and_coalescing () =
  let c = Cache.create ~capacity:8 () in
  let k = Cache.key ~fingerprint:"f" ~variant_hash:"v" in
  Alcotest.(check bool) "miss counted" true (Cache.find c k = None);
  let runs = ref 0 in
  let compute () =
    incr runs;
    Ok []
  in
  let _, hit1 = Cache.find_or_compute c k compute in
  let _, hit2 = Cache.find_or_compute c k compute in
  Alcotest.(check bool) "first computes" false hit1;
  Alcotest.(check bool) "second hits" true hit2;
  Alcotest.(check int) "compute ran once" 1 !runs;
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.hits;
  Alcotest.(check int) "misses" 2 s.misses;
  Alcotest.(check (float 1e-9)) "hit rate" (1.0 /. 3.0) (Cache.hit_rate s)

(* Regression: transient failures must never be stored.  A key that
   failed once with a transient error recovers on the next request, while
   deterministic failures stay negatively cached. *)
let test_cache_failure_taxonomy () =
  let c = Cache.create ~capacity:8 () in
  let k = Cache.key ~fingerprint:"f" ~variant_hash:"v" in
  let runs = ref 0 in
  let flaky_then_ok () =
    incr runs;
    if !runs = 1 then Error (Cache.transient "flaky link") else Ok []
  in
  (match Cache.find_or_compute c k flaky_then_ok with
  | Error { transient = true; _ }, false -> ()
  | _ -> Alcotest.fail "first call should report the transient failure");
  Alcotest.(check int) "transient outcome not stored" 0 (Cache.stats c).entries;
  (* the key recovers: the next request recomputes and succeeds *)
  (match Cache.find_or_compute c k flaky_then_ok with
  | Ok [], false -> ()
  | _ -> Alcotest.fail "second call should recompute and succeed");
  Alcotest.(check int) "compute ran twice" 2 !runs;
  let _, hit = Cache.find_or_compute c k flaky_then_ok in
  Alcotest.(check bool) "success now cached" true hit;
  Alcotest.(check int) "no third run" 2 !runs;
  (* deterministic failures are a property of the inputs: cached *)
  let k2 = Cache.key ~fingerprint:"f" ~variant_hash:"w" in
  let det () = Error (Cache.deterministic "kernel cannot map") in
  ignore (Cache.find_or_compute c k2 det);
  (match Cache.find_or_compute c k2 (fun () -> Alcotest.fail "negative hit") with
  | Error { transient = false; _ }, true -> ()
  | _ -> Alcotest.fail "deterministic failure should be a negative hit");
  Alcotest.(check int) "both cacheable outcomes stored" 2 (Cache.stats c).entries;
  (* add silently drops transients too *)
  let k3 = Cache.key ~fingerprint:"f" ~variant_hash:"x" in
  Cache.add c k3 (Error (Cache.transient "drop me"));
  Alcotest.(check (option bool)) "transient add dropped" None
    (Option.map Result.is_ok (Cache.find c k3))

(* Request coalescing when the computing thread raises: the waiters must
   recompute (not deadlock), the key's pending mark must clear, and the
   exception must reach only the thread whose compute raised. *)
let test_coalescing_raising_computer () =
  let c = Cache.create ~capacity:8 () in
  let k = Cache.key ~fingerprint:"f" ~variant_hash:"v" in
  let first = Atomic.make true in
  let runs = Atomic.make 0 in
  let compute () =
    Atomic.incr runs;
    if Atomic.compare_and_set first true false then
      raise (Fault.Injected { point = "test"; kind = Fault.Transient })
    else Ok []
  in
  let pool = Pool.create (Pool.Domains 4) in
  let results =
    Pool.map_result pool
      (fun _ -> Cache.find_or_compute c k compute)
      (List.init 8 Fun.id)
  in
  Pool.shutdown pool;
  let errs, oks =
    List.fold_left
      (fun (e, o) -> function
        | Error (Fault.Injected _) -> (e + 1, o)
        | Ok (Ok [], _) -> (e, o + 1)
        | Error exn -> Alcotest.failf "unexpected: %s" (Printexc.to_string exn)
        | Ok _ -> Alcotest.fail "unexpected outcome shape")
      (0, 0) results
  in
  Alcotest.(check int) "exactly the raiser fails" 1 errs;
  Alcotest.(check int) "every waiter recovers" 7 oks;
  Alcotest.(check int) "compute ran exactly twice" 2 (Atomic.get runs);
  (* pending cleared: a fresh caller hits the stored success instantly *)
  let _, hit = Cache.find_or_compute c k (fun () -> Alcotest.fail "must hit") in
  Alcotest.(check bool) "pending mark cleared, key cached" true hit

(* The cache-correctness satellite: any schedule list served out of the
   cache must still validate against the sysADG of the overlay whose
   fingerprint keyed it. *)
let test_cached_schedules_validate () =
  let o = Lazy.force general in
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" o with
  | Ok _ -> ()
  | Error e -> failwith e);
  let svc = Service.create ~caching:true registry in
  let spec =
    Trace.spec ~seed:5 ~requests:60 ~users:4 ~working_set:2
      ~overlays:[ ("general", Kernels.all) ]
      ()
  in
  let responses = Service.run svc (Trace.generate spec) in
  Alcotest.(check int) "all answered" 60 (List.length responses);
  let hits = ref 0 in
  List.iter
    (fun (r : Service.response) ->
      if r.cache_hit then incr hits;
      match r.result with
      | Error e -> Alcotest.failf "request %d failed: %s" r.request.id
          (Service.error_to_string e)
      | Ok scheds ->
        Alcotest.(check bool) "schedules nonempty" true (scheds <> []);
        List.iter
          (fun s ->
            match Schedule.validate s o.Overgen.design.sys with
            | Ok () -> ()
            | Error e ->
              Alcotest.failf "request %d (%s): cached schedule invalid: %s"
                r.request.id (Service.payload_name r.request.payload) e)
          scheds)
    responses;
  Alcotest.(check bool) "trace actually exercised the cache" true (!hits > 0)

let test_hit_miss_accounting () =
  let o = Lazy.force general in
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" o with
  | Ok _ -> ()
  | Error e -> failwith e);
  let spec =
    Trace.spec ~seed:11 ~requests:50 ~users:3 ~working_set:2
      ~overlays:[ ("general", Kernels.all) ]
      ()
  in
  let svc = Service.create ~caching:true registry in
  ignore (Service.run svc (Trace.generate spec));
  let s = Option.get (Service.cache svc) in
  let stats = Cache.stats s in
  let distinct = Trace.distinct_keys spec in
  Alcotest.(check int) "one scheduler run per distinct key" distinct stats.misses;
  Alcotest.(check int) "everything else hits" (50 - distinct) stats.hits;
  let snap = Telemetry.snapshot (Service.telemetry svc) in
  Alcotest.(check int) "telemetry agrees" distinct snap.misses;
  Alcotest.(check int) "telemetry requests" 50 snap.requests

(* ---------------- deterministic vs parallel ---------------- *)

let outline (r : Service.response) =
  ( r.request.id,
    match r.result with
    | Ok scheds ->
      Ok (List.length scheds, List.fold_left (fun a s -> a + s.Schedule.ii) 0 scheds)
    | Error e -> Error (Service.error_to_string e) )

let test_workers_match_deterministic () =
  let o = Lazy.force general in
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" o with
  | Ok _ -> ()
  | Error e -> failwith e);
  let spec =
    Trace.spec ~seed:7 ~requests:80 ~users:5 ~working_set:2
      ~overlays:[ ("general", Kernels.all) ]
      ()
  in
  let trace = Trace.generate spec in
  let replay mode =
    let svc = Service.create ~mode ~caching:true registry in
    let rs = Service.run svc trace in
    Service.shutdown svc;
    (List.map outline rs, Cache.stats (Option.get (Service.cache svc)))
  in
  let det, det_stats = replay Service.Deterministic in
  let par, par_stats = replay (Service.Workers 3) in
  Alcotest.(check int) "same response count" (List.length det) (List.length par);
  List.iter2
    (fun (id_d, r_d) (id_p, r_p) ->
      Alcotest.(check int) "ids align" id_d id_p;
      Alcotest.(check bool)
        (Printf.sprintf "request %d identical across modes" id_d)
        true (r_d = r_p))
    det par;
  (* compute-once coalescing makes the totals mode-independent *)
  Alcotest.(check int) "same miss total" det_stats.misses par_stats.misses;
  Alcotest.(check int) "same hit total" det_stats.hits par_stats.hits

(* ---------------- fault tolerance ---------------- *)

(* The tentpole invariant: under injected faults at Workers 4, the
   service still answers exactly one response per request — faulted
   requests as [Error], never by taking down the batch. *)
let test_faults_isolated_per_request () =
  let o = Lazy.force general in
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" o with
  | Ok _ -> ()
  | Error e -> failwith e);
  let spec =
    Trace.spec ~seed:13 ~requests:60 ~users:4 ~working_set:2
      ~overlays:[ ("general", Kernels.all) ]
      ()
  in
  let trace = Trace.generate spec in
  let svc =
    Service.create ~mode:(Service.Workers 4)
      ~policy:{ Service.default_policy with retries = 1 }
      ~caching:true registry
  in
  let responses =
    Fault.with_faults
      { Fault.default_config with seed = 17; rate = 0.2 }
      (fun () -> Service.run svc trace)
  in
  Service.shutdown svc;
  Alcotest.(check int) "one response per request" 60 (List.length responses);
  List.iteri
    (fun i (r : Service.response) ->
      Alcotest.(check int) "ids cover the trace in order" i r.request.id;
      match r.result with
      | Ok scheds -> Alcotest.(check bool) "ok is real" true (scheds <> [])
      | Error (Service.Transient_failure _ | Service.Compile_error _) -> ()
      | Error e ->
        Alcotest.failf "request %d: unexpected error %s" i
          (Service.error_to_string e))
    responses;
  let snap = Telemetry.snapshot (Service.telemetry svc) in
  Alcotest.(check int) "telemetry saw every request" 60 snap.requests;
  Alcotest.(check bool) "faults were actually injected" true (snap.faults > 0);
  Alcotest.(check bool) "injection really happened" true
    (Fault.injected_total () > 0)

(* A transient fault on the first attempt, clean second attempt: the
   retry policy must absorb it into an [Ok] response. *)
let test_retry_recovers () =
  let pt = Fault.Points.service_process in
  let cfg_of seed =
    { Fault.default_config with seed; rate = 0.3; points = [ pt ] }
  in
  (* the plan is pure, so we can search for a seed that injects exactly
     on the first visit of the service fault point *)
  let rec find seed =
    if seed > 10_000 then Alcotest.fail "no suitable seed in range"
    else
      let cfg = cfg_of seed in
      if
        Fault.would_inject cfg pt 0 = Some Fault.Transient
        && Fault.would_inject cfg pt 1 = None
      then cfg
      else find (seed + 1)
  in
  let cfg = find 0 in
  let o = Lazy.force general in
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" o with
  | Ok _ -> ()
  | Error e -> failwith e);
  let svc = Service.create ~caching:true registry in
  let req =
    { Service.id = 0; user = "u"; tenant = ""; overlay = "general";
      payload = Service.Kernel (Kernels.find "fir"); tuned = false; trace = "";
      deadline_s = None }
  in
  let responses = Fault.with_faults cfg (fun () -> Service.run svc [ req ]) in
  (match responses with
  | [ { result = Ok _; _ } ] -> ()
  | [ { result = Error e; _ } ] ->
    Alcotest.failf "retry did not recover: %s" (Service.error_to_string e)
  | _ -> Alcotest.fail "expected exactly one response");
  let snap = Telemetry.snapshot (Service.telemetry svc) in
  Alcotest.(check int) "one fault recorded" 1 snap.faults;
  Alcotest.(check int) "one retry recorded" 1 snap.retries;
  Alcotest.(check int) "no deadline involved" 0 snap.deadlines

(* A deadline so tight the queue wait alone exceeds it: every request is
   shed with [Deadline_exceeded] without running the compiler. *)
let test_deadline_shedding () =
  let o = Lazy.force general in
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" o with
  | Ok _ -> ()
  | Error e -> failwith e);
  let svc =
    Service.create
      ~policy:{ Service.default_policy with deadline_s = Some 1e-6 }
      ~caching:true registry
  in
  let reqs =
    List.init 5 (fun id ->
        { Service.id; user = "u"; tenant = ""; overlay = "general";
          payload = Service.Kernel (Kernels.find "fir"); tuned = false;
          trace = ""; deadline_s = None })
  in
  List.iter
    (fun r ->
      match Service.submit svc r with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "admission should succeed")
    reqs;
  (* make the queue wait unambiguously exceed the 1 microsecond budget *)
  Unix.sleepf 0.005;
  let responses = Service.drain svc in
  Alcotest.(check int) "all answered" 5 (List.length responses);
  List.iter
    (fun (r : Service.response) ->
      match r.result with
      | Error Service.Deadline_exceeded -> ()
      | Ok _ -> Alcotest.failf "request %d beat a 1us deadline" r.request.id
      | Error e ->
        Alcotest.failf "request %d: %s" r.request.id
          (Service.error_to_string e))
    responses;
  Alcotest.(check int) "sheds counted" 5
    (Telemetry.snapshot (Service.telemetry svc)).deadlines

(* ---------------- backpressure ---------------- *)

let test_backpressure () =
  let o = Lazy.force general in
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" o with
  | Ok _ -> ()
  | Error e -> failwith e);
  let svc = Service.create ~queue_capacity:4 registry in
  let req id =
    { Service.id; user = "u"; tenant = ""; overlay = "general";
      payload = Service.Kernel (Kernels.find "fir"); tuned = false;
      trace = ""; deadline_s = None }
  in
  let accepted, rejected =
    List.fold_left
      (fun (a, r) id ->
        match Service.submit svc (req id) with
        | Ok () -> (a + 1, r)
        | Error Service.Queue_full -> (a, r + 1)
        | Error e -> Alcotest.failf "unexpected: %s" (Service.error_to_string e))
      (0, 0)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check int) "capacity admitted" 4 accepted;
  Alcotest.(check int) "overflow rejected" 2 rejected;
  Alcotest.(check int) "rejections counted" 2
    (Telemetry.snapshot (Service.telemetry svc)).rejections;
  Alcotest.(check int) "admitted requests complete" 4
    (List.length (Service.drain svc))

let test_unknown_overlay () =
  let registry = Registry.create () in
  let svc = Service.create registry in
  let r =
    { Service.id = 0; user = "u"; tenant = ""; overlay = "missing";
      payload = Service.Kernel (Kernels.find "fir"); tuned = false;
      trace = ""; deadline_s = None }
  in
  (match Service.submit svc r with Ok () -> () | Error _ -> Alcotest.fail "admit");
  match Service.drain svc with
  | [ { result = Error (Service.Unknown_overlay "missing"); _ } ] -> ()
  | _ -> Alcotest.fail "expected Unknown_overlay failure"

(* A [Source] payload parses on the worker and lands on the same memo and
   cache keys as the equivalent [Kernel] payload: the second request —
   the IR form of the kernel the source lowered to — must be a cache
   hit.  A source the frontend rejects is a deterministic
   [Source_error], never an exception out of the service. *)
let test_source_payload () =
  let o = Lazy.force general in
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" o with
  | Ok _ -> ()
  | Error e -> failwith e);
  let svc = Service.create ~caching:true registry in
  let kernel = Kernels.find "fir" in
  let req id payload =
    { Service.id; user = "u"; tenant = ""; overlay = "general"; payload;
      tuned = false; trace = ""; deadline_s = None }
  in
  let responses =
    Service.run svc
      [
        req 0 (Service.Source (C_source.emit kernel));
        req 1 (Service.Kernel kernel);
        req 2 (Service.Source "int broken(");
      ]
  in
  match responses with
  | [ r0; r1; r2 ] ->
    let scheds = function
      | { Service.result = Ok s; _ } -> s
      | { Service.result = Error e; _ } ->
        Alcotest.failf "compile failed: %s" (Service.error_to_string e)
    in
    Alcotest.(check bool) "source compile is the miss" false r0.cache_hit;
    Alcotest.(check bool) "IR form hits the source's cache entry" true
      r1.cache_hit;
    Alcotest.(check bool) "identical schedules" true (scheds r0 = scheds r1);
    (match r2.result with
    | Error (Service.Source_error e) ->
      Alcotest.(check bool) "parse error is located" true
        (String.length e > 0 && e.[0] >= '1' && e.[0] <= '9')
    | Error e ->
      Alcotest.failf "wrong error kind: %s" (Service.error_to_string e)
    | Ok _ -> Alcotest.fail "malformed source compiled")
  | _ -> Alcotest.fail "expected exactly three responses"

(* ---------------- telemetry ---------------- *)

(* Regression: a snapshot of a telemetry with no completed requests used to
   blow up computing percentiles of an empty latency buffer; every field
   must simply be zero. *)
let test_telemetry_empty_snapshot () =
  let t = Telemetry.create () in
  let s = Telemetry.snapshot t in
  Alcotest.(check int) "requests" 0 s.requests;
  Alcotest.(check (float 0.0)) "p50" 0.0 s.p50_ms;
  Alcotest.(check (float 0.0)) "p90" 0.0 s.p90_ms;
  Alcotest.(check (float 0.0)) "p99" 0.0 s.p99_ms;
  Alcotest.(check (float 0.0)) "mean" 0.0 s.mean_ms;
  Alcotest.(check (float 0.0)) "max" 0.0 s.max_ms;
  Alcotest.(check (float 0.0)) "hit rate" 0.0 (Telemetry.hit_rate s);
  (* the report renders without a wall clock, too *)
  Alcotest.(check bool) "report renders" true
    (String.length (Telemetry.report ~wall_s:0.0 s) > 0)

(* The registry view and the snapshot are two reads of one store: the
   Prometheus dump's per-outcome request counts must equal the snapshot. *)
let test_telemetry_registry_parity () =
  let t = Telemetry.create () in
  Telemetry.record t Telemetry.Hit ~service_s:0.001;
  Telemetry.record t Telemetry.Hit ~service_s:0.002;
  Telemetry.record t Telemetry.Miss ~service_s:0.040;
  Telemetry.record t Telemetry.Failed ~service_s:0.003;
  Telemetry.record_rejection t;
  let s = Telemetry.snapshot t in
  let dump = Overgen_obs.Metrics.render_prometheus (Telemetry.registry t) in
  let contains needle =
    let n = String.length needle and l = String.length dump in
    let rec scan i = i + n <= l && (String.sub dump i n = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun (outcome, count) ->
      let line =
        Printf.sprintf "overgen_service_requests_total{outcome=\"%s\"} %d"
          outcome count
      in
      Alcotest.(check bool) ("dump has " ^ line) true (contains line))
    [
      ("hit", s.hits); ("miss", s.misses); ("uncached", s.uncached);
      ("failed", s.failures);
    ];
  Alcotest.(check bool) "rejections in dump" true
    (contains (Printf.sprintf "overgen_service_rejections_total %d" s.rejections));
  Alcotest.(check bool) "latency histogram in dump" true
    (contains "overgen_service_latency_seconds_count 4");
  Alcotest.(check (float 1e-9)) "exact p50 from raw latencies" 2.5 s.p50_ms;
  Alcotest.(check (float 1e-9)) "exact max" 40.0 s.max_ms

(* ---------------- core compile through the cache hooks ---------------- *)

let test_compile_cached_hooks () =
  let o = Lazy.force general in
  let c = Cache.create ~capacity:16 () in
  let opts = { Overgen.default_opts with cache = Some (Cache.hooks c) } in
  let k = Kernels.find "gemm" in
  (match Overgen.compile ~opts o k with
  | Ok r -> Alcotest.(check bool) "cold is a miss" false r.Overgen.from_cache
  | Error e -> Alcotest.failf "compile: %s" e);
  (match Overgen.compile ~opts o k with
  | Ok r ->
    Alcotest.(check bool) "second is a hit" true r.Overgen.from_cache;
    List.iter
      (fun s ->
        match Schedule.validate s o.Overgen.design.sys with
        | Ok () -> ()
        | Error e -> Alcotest.failf "cached schedule invalid: %s" e)
      r.Overgen.schedules
  | Error e -> Alcotest.failf "compile hit: %s" e);
  match Overgen.run ~opts o k with
  | Ok report ->
    Alcotest.(check bool) "report marks the cache hit" true report.from_cache
  | Error e -> Alcotest.failf "run ~cache: %s" e

(* ---------------- negative caching ---------------- *)

(* A deliberately incapable overlay: the 2x2 seed design with Add-only
   16-bit PEs cannot host most kernels, so scheduling fails — and the
   failure must be cached like any other outcome. *)
let tiny_overlay () =
  let caps = Op.Cap.of_ops [ Op.Add ] [ Dtype.I16 ] in
  let sys = Sys_adg.make (Builder.seed ~caps ~width_bits:16) System.default in
  let synth = Oracle.synth_full sys in
  let design =
    { Overgen_dse.Dse.sys; per_app = []; objective = 0.0; predicted = synth.res }
  in
  { Overgen.design; synth; model = Lazy.force model; dse = None }

let test_negative_caching () =
  let o = tiny_overlay () in
  let c = Cache.create ~capacity:16 () in
  let opts = { Overgen.default_opts with cache = Some (Cache.hooks c) } in
  let k = Kernels.find "gemm" in
  (match Overgen.compile ~opts o k with
  | Ok _ -> Alcotest.fail "gemm should not schedule on the Add-only seed"
  | Error _ -> ());
  let after_first = Cache.stats c in
  (match Overgen.compile ~opts o k with
  | Ok _ -> Alcotest.fail "still should not schedule"
  | Error _ -> ());
  let after_second = Cache.stats c in
  Alcotest.(check int) "failure was stored" 1 after_first.entries;
  Alcotest.(check int) "retry hits the cached failure"
    (after_first.hits + 1) after_second.hits;
  Alcotest.(check int) "no second scheduler run"
    after_first.misses after_second.misses

(* ---------------- fingerprint collision probe ---------------- *)

(* Walk >=200 mutated designs; structurally distinct serializations must
   never share a fingerprint, and equal serializations must share one. *)
(* Regression: the key join is length-prefixed, so moving bytes across the
   fingerprint/variant-hash boundary must change the key.  The old
   delimiter join ("fp" ^ ":" ^ "vh") collided on exactly these pairs. *)
let test_cache_key_no_boundary_collisions () =
  let k a b = Cache.key ~fingerprint:a ~variant_hash:b in
  Alcotest.(check bool) "boundary shift" true (k "ab" "c" <> k "a" "bc");
  Alcotest.(check bool) "delimiter inside fingerprint" true
    (k "a:b" "c" <> k "a" "b:c");
  Alcotest.(check bool) "empty vs shifted" true (k "" "ab" <> k "ab" "");
  Alcotest.(check bool) "digit bleeding into the length prefix" true
    (k "1" "x" <> k "" "1x" && k "11:x" "y" <> k "1" "1:xy");
  Alcotest.(check string) "core and service agree"
    (Overgen.make_schedule_key ~fingerprint:"f" ~variant_hash:"v")
    (k "f" "v")

let test_fingerprint_collisions () =
  let rng = Rng.create 2024 in
  let pool =
    Op.Cap.of_ops [ Op.Add; Op.Mul; Op.Div; Op.Max ] [ Dtype.I16; Dtype.I64; Dtype.F64 ]
  in
  let usage = Mutate.usage_of [] in
  let base = Builder.general_overlay () in
  let seen : (string, string) Hashtbl.t = Hashtbl.create 512 in
  let designs = ref 0 in
  let adg = ref base.Sys_adg.adg in
  for _ = 1 to 250 do
    let adg', _ = Mutate.propose rng ~preserve:false ~caps_pool:pool !adg usage in
    adg := adg';
    let sys = Sys_adg.with_adg base !adg in
    let serial = Serial.to_string sys in
    let fp = Serial.fingerprint sys in
    incr designs;
    (match Hashtbl.find_opt seen serial with
    | Some fp' ->
      Alcotest.(check string) "equal serialization, equal fingerprint" fp' fp
    | None ->
      Hashtbl.iter
        (fun serial' fp' ->
          if fp' = fp && serial' <> serial then
            Alcotest.fail "distinct designs share a fingerprint")
        seen;
      Hashtbl.add seen serial fp)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "probe covered %d designs" !designs)
    true (!designs >= 200);
  Alcotest.(check bool) "mutation walk explored distinct structures" true
    (Hashtbl.length seen >= 100)

let tests =
  [
    Alcotest.test_case "lru basics" `Quick test_lru_basics;
    Alcotest.test_case "lru replace + capacity" `Quick test_lru_replace_and_capacity;
    Alcotest.test_case "registry" `Slow test_registry;
    Alcotest.test_case "cache counting + coalescing" `Quick
      test_cache_counting_and_coalescing;
    Alcotest.test_case "cache failure taxonomy" `Quick
      test_cache_failure_taxonomy;
    Alcotest.test_case "coalescing raising computer" `Quick
      test_coalescing_raising_computer;
    Alcotest.test_case "faults isolated per request" `Slow
      test_faults_isolated_per_request;
    Alcotest.test_case "retry recovers" `Slow test_retry_recovers;
    Alcotest.test_case "deadline shedding" `Slow test_deadline_shedding;
    Alcotest.test_case "cached schedules validate" `Slow
      test_cached_schedules_validate;
    Alcotest.test_case "hit/miss accounting" `Slow test_hit_miss_accounting;
    Alcotest.test_case "workers match deterministic" `Slow
      test_workers_match_deterministic;
    Alcotest.test_case "backpressure" `Slow test_backpressure;
    Alcotest.test_case "unknown overlay" `Quick test_unknown_overlay;
    Alcotest.test_case "source payload" `Slow test_source_payload;
    Alcotest.test_case "telemetry empty snapshot" `Quick
      test_telemetry_empty_snapshot;
    Alcotest.test_case "telemetry registry parity" `Quick
      test_telemetry_registry_parity;
    Alcotest.test_case "compile_cached hooks" `Slow test_compile_cached_hooks;
    Alcotest.test_case "negative caching" `Slow test_negative_caching;
    Alcotest.test_case "cache key boundary collisions" `Quick
      test_cache_key_no_boundary_collisions;
    Alcotest.test_case "fingerprint collision probe" `Quick
      test_fingerprint_collisions;
  ]
