open Overgen_workload
module Dse = Overgen_dse.Dse

let model = lazy (Overgen.train_model ~seed:21 ())

let small_overlay =
  lazy
    (Overgen.generate
       ~config:{ Dse.default_config with iterations = 80; seed = 33 }
       ~model:(Lazy.force model)
       [ Kernels.find "vecmax"; Kernels.find "accumulate" ])

let test_generate_and_run () =
  let o = Lazy.force small_overlay in
  Alcotest.(check bool) "synth clock plausible" true
    (o.synth.freq_mhz > 40.0 && o.synth.freq_mhz <= 150.0);
  match Overgen.run o (Kernels.find "vecmax") with
  | Ok r ->
    Alcotest.(check bool) "cycles positive" true (r.cycles > 0);
    Alcotest.(check bool) "wall time positive" true (r.wall_ms > 0.0);
    Alcotest.(check bool) "compiled fast (real seconds)" true (r.compile_seconds < 30.0)
  | Error e -> Alcotest.failf "run failed: %s" e

let test_in_domain_kernels_always_run () =
  let o = Lazy.force small_overlay in
  List.iter
    (fun name ->
      match Overgen.run o (Kernels.find name) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s should run on its own overlay: %s" name e)
    [ "vecmax"; "accumulate" ]

let test_general_hosts_all () =
  match Overgen.general ~model:(Lazy.force model) Kernels.all with
  | Ok o ->
    List.iter
      (fun (k : Ir.kernel) ->
        match Overgen.run o k with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s on general: %s" k.name e)
      Kernels.all
  | Error e -> Alcotest.failf "general overlay: %s" e

let test_reconfigure_fast () =
  let o = Lazy.force small_overlay in
  let us = Overgen.reconfigure_us o in
  Alcotest.(check bool) "microseconds, not seconds" true (us > 0.1 && us < 10_000.0);
  Alcotest.(check bool) "orders faster than reflash" true
    (Overgen.fpga_reflash_ms /. (us /. 1000.0) > 1000.0)

let test_report_consistency () =
  let o = Lazy.force small_overlay in
  match Overgen.run o (Kernels.find "accumulate") with
  | Ok r ->
    Alcotest.(check (float 1e-9)) "wall time = cycles/freq"
      (float_of_int r.cycles /. (o.synth.freq_mhz *. 1000.0))
      r.wall_ms
  | Error e -> Alcotest.failf "%s" e

let tests =
  [
    Alcotest.test_case "generate + run" `Slow test_generate_and_run;
    Alcotest.test_case "in-domain kernels run" `Slow test_in_domain_kernels_always_run;
    Alcotest.test_case "general hosts all" `Slow test_general_hosts_all;
    Alcotest.test_case "reconfigure fast" `Slow test_reconfigure_fast;
    Alcotest.test_case "report consistency" `Slow test_report_consistency;
  ]
