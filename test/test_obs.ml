(* The observability subsystem: registry exactness under domain
   parallelism, span nesting invariants, exporter well-formedness, and the
   null backend's zero-cost contract. *)

module Obs = Overgen_obs.Obs
module Metrics = Overgen_obs.Metrics
module Span = Overgen_obs.Span
module Export = Overgen_obs.Export

(* Every test leaves the global gate off and the span buffers empty, so
   tests cannot contaminate each other (alcotest runs them in order). *)
let with_recording f =
  Obs.enable ();
  Span.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Span.reset ())
    f

(* --- registry --- *)

let test_counter_concurrent () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter reg "hammered_total" in
  let domains = 4 and per_domain = 50_000 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int)
    "no lost increments" (domains * per_domain) (Metrics.counter_value c)

let test_histogram_concurrent () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram reg "obs_seconds" ~buckets:[| 0.5; 1.5 |] in
  let domains = 4 and per_domain = 20_000 in
  let workers =
    List.init domains (fun i ->
        Domain.spawn (fun () ->
            (* even domains observe 1.0 (second bucket), odd 2.0 (+inf) *)
            let v = if i mod 2 = 0 then 1.0 else 2.0 in
            for _ = 1 to per_domain do
              Metrics.observe h v
            done))
  in
  List.iter Domain.join workers;
  let s = Metrics.histogram_snapshot h in
  let n = domains * per_domain in
  Alcotest.(check int) "count exact" n s.h_count;
  Alcotest.(check (float 1e-3))
    "sum exact" (float_of_int (n / 2) *. 3.0) s.h_sum;
  Alcotest.(check int) "buckets incl +inf" 3 (Array.length s.h_buckets);
  Alcotest.(check int) "nothing under 0.5" 0 (snd s.h_buckets.(0));
  Alcotest.(check int) "half at <= 1.5" (n / 2) (snd s.h_buckets.(1));
  Alcotest.(check int) "+inf cumulative = count" n (snd s.h_buckets.(2));
  Alcotest.(check bool)
    "last bound is infinity" true
    (fst s.h_buckets.(2) = infinity)

let test_get_or_create () =
  let reg = Metrics.create_registry () in
  let a = Metrics.counter reg "same_total" ~labels:[ ("k", "v") ] in
  let b = Metrics.counter reg "same_total" ~labels:[ ("k", "v") ] in
  Metrics.incr a;
  Metrics.incr b ~by:2;
  Alcotest.(check int) "one underlying metric" 3 (Metrics.counter_value a);
  let other = Metrics.counter reg "same_total" ~labels:[ ("k", "w") ] in
  Alcotest.(check int) "different labels are distinct" 0
    (Metrics.counter_value other);
  Alcotest.(check bool) "kind mismatch rejected" true
    (match Metrics.gauge reg "same_total" ~labels:[ ("k", "v") ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_gauge () =
  let reg = Metrics.create_registry () in
  let g = Metrics.gauge reg "level" in
  Alcotest.(check (float 0.0)) "initial" 0.0 (Metrics.gauge_value g);
  Metrics.set g 42.5;
  Metrics.set g 17.25;
  Alcotest.(check (float 0.0)) "last write wins" 17.25 (Metrics.gauge_value g)

let contains ~needle hay =
  let n = String.length needle and l = String.length hay in
  let rec scan i = i + n <= l && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let test_prometheus_render () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter reg "reqs_total" ~help:"requests" ~labels:[ ("user", "a\"b") ] in
  Metrics.incr c ~by:7;
  let h = Metrics.histogram reg "lat_seconds" ~buckets:[| 0.1 |] in
  Metrics.observe h 0.05;
  Metrics.observe h 0.5;
  let dump = Metrics.render_prometheus reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle dump))
    [
      "# HELP reqs_total requests";
      "# TYPE reqs_total counter";
      "reqs_total{user=\"a\\\"b\"} 7";
      "# TYPE lat_seconds histogram";
      "lat_seconds_bucket{le=\"0.1\"} 1";
      "lat_seconds_bucket{le=\"+Inf\"} 2";
      "lat_seconds_count 2";
    ];
  (* reset zeroes values but keeps registrations *)
  Metrics.reset reg;
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c)

(* --- spans --- *)

let test_span_nesting () =
  with_recording @@ fun () ->
  let inner_id = ref 0 in
  Span.with_span "root" ~attrs:[ ("k", "v") ] (fun () ->
      Span.with_span "child_a" (fun () -> inner_id := Span.current_id ());
      Span.add_attr "late" "yes";
      Span.with_span "child_b" (fun () -> ()));
  Span.with_span "sibling_root" (fun () -> ());
  let spans = Span.spans () in
  Alcotest.(check int) "four spans" 4 (List.length spans);
  let find name = List.find (fun (s : Span.span) -> s.name = name) spans in
  let root = find "root" and a = find "child_a" and b = find "child_b" in
  let sib = find "sibling_root" in
  Alcotest.(check int) "root has no parent" 0 root.parent;
  Alcotest.(check int) "sibling root has no parent" 0 sib.parent;
  Alcotest.(check int) "a nested under root" root.id a.parent;
  Alcotest.(check int) "b nested under root" root.id b.parent;
  Alcotest.(check int) "current_id saw child_a" a.id !inner_id;
  Alcotest.(check (list (pair string string)))
    "attrs keep order, late attr appended"
    [ ("k", "v"); ("late", "yes") ]
    root.attrs;
  Alcotest.(check bool) "children within root" true
    (a.start_s >= root.start_s
    && b.start_s +. b.dur_s <= root.start_s +. root.dur_s +. 1e-6);
  (* merged order is by start time *)
  let names = List.map (fun (s : Span.span) -> s.name) spans in
  Alcotest.(check (list string))
    "sorted by start" [ "root"; "child_a"; "child_b"; "sibling_root" ] names

let test_span_recorded_on_raise () =
  with_recording @@ fun () ->
  (try Span.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (Span.count ());
  Alcotest.(check int) "no span left open" 0 (Span.current_id ())

let test_span_multi_domain () =
  with_recording @@ fun () ->
  Span.with_span "main_root" (fun () ->
      let d =
        Domain.spawn (fun () ->
            Span.with_span "worker_root" (fun () ->
                Span.with_span "worker_child" (fun () -> ())))
      in
      Domain.join d);
  let spans = Span.spans () in
  Alcotest.(check int) "three spans merged" 3 (List.length spans);
  let find name = List.find (fun (s : Span.span) -> s.name = name) spans in
  (* parenting never crosses domains *)
  Alcotest.(check int) "worker root is a root" 0 (find "worker_root").parent;
  Alcotest.(check int)
    "worker child parented in its domain"
    (find "worker_root").id (find "worker_child").parent;
  Alcotest.(check bool) "distinct domains" true
    ((find "main_root").domain <> (find "worker_root").domain)

(* --- exporters --- *)

let test_chrome_export () =
  with_recording @@ fun () ->
  Span.with_span "outer" ~attrs:[ ("path", "a\\b\"c\nd") ] (fun () ->
      Span.with_span "inner" (fun () -> ()));
  let spans = Span.spans () in
  let json = Export.to_chrome spans in
  (match Export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome export not valid JSON: %s" e);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle json))
    [ "\"traceEvents\""; "\"ph\":\"X\""; "\"name\":\"outer\""; "a\\\\b\\\"c\\nd" ];
  (* JSONL: every line is itself one valid JSON value *)
  let jsonl = Export.to_jsonl spans in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one line per span" (List.length spans) (List.length lines);
  List.iter
    (fun line ->
      match Export.validate_json line with
      | Ok () -> ()
      | Error e -> Alcotest.failf "jsonl line invalid: %s (%s)" e line)
    lines

let test_validate_json_rejects () =
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("rejects " ^ bad) true
        (Result.is_error (Export.validate_json bad)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "[1] trailing"; "\"unterminated"; "nul" ];
  List.iter
    (fun good ->
      Alcotest.(check bool) ("accepts " ^ good) true
        (Result.is_ok (Export.validate_json good)))
    [ "{}"; "[]"; "null"; "-1.5e3"; "{\"a\":[1,{\"b\":\"\\u00e9\"}]}" ]

(* --- the null backend --- *)

let test_null_backend () =
  Obs.disable ();
  Span.reset ();
  let reg = Metrics.create_registry () in
  let c = Metrics.counter reg "gated_total" in
  let v = Span.with_span "ignored" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span transparent" 42 v;
  Alcotest.(check int) "nothing recorded" 0 (Span.count ());
  Obs.incr c;
  Alcotest.(check int) "gated incr dropped" 0 (Metrics.counter_value c);
  (* zero allocation: a long gated loop must not grow the minor heap *)
  let n = 200_000 in
  let minor0 = Gc.minor_words () in
  for _ = 1 to n do
    Obs.incr c;
    ignore (Span.with_span "noop" Fun.id)
  done;
  let per_op = (Gc.minor_words () -. minor0) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "allocation-free when disabled (%.4f words/op)" per_op)
    true (per_op < 0.01)

let tests =
  [
    Alcotest.test_case "counter concurrency" `Quick test_counter_concurrent;
    Alcotest.test_case "histogram concurrency" `Quick test_histogram_concurrent;
    Alcotest.test_case "get-or-create" `Quick test_get_or_create;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "prometheus render" `Quick test_prometheus_render;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span survives raise" `Quick test_span_recorded_on_raise;
    Alcotest.test_case "span multi-domain merge" `Quick test_span_multi_domain;
    Alcotest.test_case "chrome + jsonl export" `Quick test_chrome_export;
    Alcotest.test_case "json validator" `Quick test_validate_json_rejects;
    Alcotest.test_case "null backend" `Quick test_null_backend;
  ]
