(* The observability subsystem: registry exactness under domain
   parallelism, span nesting invariants, exporter well-formedness, and the
   null backend's zero-cost contract. *)

module Obs = Overgen_obs.Obs
module Metrics = Overgen_obs.Metrics
module Span = Overgen_obs.Span
module Export = Overgen_obs.Export
module Log = Overgen_obs.Log
module Rng = Overgen_util.Rng

(* Every test leaves the global gate off and the span buffers empty, so
   tests cannot contaminate each other (alcotest runs them in order). *)
let with_recording f =
  Obs.enable ();
  Span.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Span.reset ())
    f

(* --- registry --- *)

let test_counter_concurrent () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter reg "hammered_total" in
  let domains = 4 and per_domain = 50_000 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int)
    "no lost increments" (domains * per_domain) (Metrics.counter_value c)

let test_histogram_concurrent () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram reg "obs_seconds" ~buckets:[| 0.5; 1.5 |] in
  let domains = 4 and per_domain = 20_000 in
  let workers =
    List.init domains (fun i ->
        Domain.spawn (fun () ->
            (* even domains observe 1.0 (second bucket), odd 2.0 (+inf) *)
            let v = if i mod 2 = 0 then 1.0 else 2.0 in
            for _ = 1 to per_domain do
              Metrics.observe h v
            done))
  in
  List.iter Domain.join workers;
  let s = Metrics.histogram_snapshot h in
  let n = domains * per_domain in
  Alcotest.(check int) "count exact" n s.h_count;
  Alcotest.(check (float 1e-3))
    "sum exact" (float_of_int (n / 2) *. 3.0) s.h_sum;
  Alcotest.(check int) "buckets incl +inf" 3 (Array.length s.h_buckets);
  Alcotest.(check int) "nothing under 0.5" 0 (snd s.h_buckets.(0));
  Alcotest.(check int) "half at <= 1.5" (n / 2) (snd s.h_buckets.(1));
  Alcotest.(check int) "+inf cumulative = count" n (snd s.h_buckets.(2));
  Alcotest.(check bool)
    "last bound is infinity" true
    (fst s.h_buckets.(2) = infinity)

let test_get_or_create () =
  let reg = Metrics.create_registry () in
  let a = Metrics.counter reg "same_total" ~labels:[ ("k", "v") ] in
  let b = Metrics.counter reg "same_total" ~labels:[ ("k", "v") ] in
  Metrics.incr a;
  Metrics.incr b ~by:2;
  Alcotest.(check int) "one underlying metric" 3 (Metrics.counter_value a);
  let other = Metrics.counter reg "same_total" ~labels:[ ("k", "w") ] in
  Alcotest.(check int) "different labels are distinct" 0
    (Metrics.counter_value other);
  Alcotest.(check bool) "kind mismatch rejected" true
    (match Metrics.gauge reg "same_total" ~labels:[ ("k", "v") ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_gauge () =
  let reg = Metrics.create_registry () in
  let g = Metrics.gauge reg "level" in
  Alcotest.(check (float 0.0)) "initial" 0.0 (Metrics.gauge_value g);
  Metrics.set g 42.5;
  Metrics.set g 17.25;
  Alcotest.(check (float 0.0)) "last write wins" 17.25 (Metrics.gauge_value g)

let contains ~needle hay =
  let n = String.length needle and l = String.length hay in
  let rec scan i = i + n <= l && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let test_prometheus_render () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter reg "reqs_total" ~help:"requests" ~labels:[ ("user", "a\"b") ] in
  Metrics.incr c ~by:7;
  let h = Metrics.histogram reg "lat_seconds" ~buckets:[| 0.1 |] in
  Metrics.observe h 0.05;
  Metrics.observe h 0.5;
  let dump = Metrics.render_prometheus reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle dump))
    [
      "# HELP reqs_total requests";
      "# TYPE reqs_total counter";
      "reqs_total{user=\"a\\\"b\"} 7";
      "# TYPE lat_seconds histogram";
      "lat_seconds_bucket{le=\"0.1\"} 1";
      "lat_seconds_bucket{le=\"+Inf\"} 2";
      "lat_seconds_count 2";
    ];
  (* reset zeroes values but keeps registrations *)
  Metrics.reset reg;
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c)

(* --- spans --- *)

let test_span_nesting () =
  with_recording @@ fun () ->
  let inner_id = ref 0 in
  Span.with_span "root" ~attrs:[ ("k", "v") ] (fun () ->
      Span.with_span "child_a" (fun () -> inner_id := Span.current_id ());
      Span.add_attr "late" "yes";
      Span.with_span "child_b" (fun () -> ()));
  Span.with_span "sibling_root" (fun () -> ());
  let spans = Span.spans () in
  Alcotest.(check int) "four spans" 4 (List.length spans);
  let find name = List.find (fun (s : Span.span) -> s.name = name) spans in
  let root = find "root" and a = find "child_a" and b = find "child_b" in
  let sib = find "sibling_root" in
  Alcotest.(check int) "root has no parent" 0 root.parent;
  Alcotest.(check int) "sibling root has no parent" 0 sib.parent;
  Alcotest.(check int) "a nested under root" root.id a.parent;
  Alcotest.(check int) "b nested under root" root.id b.parent;
  Alcotest.(check int) "current_id saw child_a" a.id !inner_id;
  Alcotest.(check (list (pair string string)))
    "attrs keep order, late attr appended"
    [ ("k", "v"); ("late", "yes") ]
    root.attrs;
  Alcotest.(check bool) "children within root" true
    (a.start_s >= root.start_s
    && b.start_s +. b.dur_s <= root.start_s +. root.dur_s +. 1e-6);
  (* merged order is by start time *)
  let names = List.map (fun (s : Span.span) -> s.name) spans in
  Alcotest.(check (list string))
    "sorted by start" [ "root"; "child_a"; "child_b"; "sibling_root" ] names

let test_span_recorded_on_raise () =
  with_recording @@ fun () ->
  (try Span.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (Span.count ());
  Alcotest.(check int) "no span left open" 0 (Span.current_id ())

let test_span_multi_domain () =
  with_recording @@ fun () ->
  Span.with_span "main_root" (fun () ->
      let d =
        Domain.spawn (fun () ->
            Span.with_span "worker_root" (fun () ->
                Span.with_span "worker_child" (fun () -> ())))
      in
      Domain.join d);
  let spans = Span.spans () in
  Alcotest.(check int) "three spans merged" 3 (List.length spans);
  let find name = List.find (fun (s : Span.span) -> s.name = name) spans in
  (* parenting never crosses domains *)
  Alcotest.(check int) "worker root is a root" 0 (find "worker_root").parent;
  Alcotest.(check int)
    "worker child parented in its domain"
    (find "worker_root").id (find "worker_child").parent;
  Alcotest.(check bool) "distinct domains" true
    ((find "main_root").domain <> (find "worker_root").domain)

(* --- exporters --- *)

let test_chrome_export () =
  with_recording @@ fun () ->
  Span.with_span "outer" ~attrs:[ ("path", "a\\b\"c\nd") ] (fun () ->
      Span.with_span "inner" (fun () -> ()));
  let spans = Span.spans () in
  let json = Export.to_chrome spans in
  (match Export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome export not valid JSON: %s" e);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle json))
    [ "\"traceEvents\""; "\"ph\":\"X\""; "\"name\":\"outer\""; "a\\\\b\\\"c\\nd" ];
  (* JSONL: every line is itself one valid JSON value *)
  let jsonl = Export.to_jsonl spans in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one line per span" (List.length spans) (List.length lines);
  List.iter
    (fun line ->
      match Export.validate_json line with
      | Ok () -> ()
      | Error e -> Alcotest.failf "jsonl line invalid: %s (%s)" e line)
    lines

let test_validate_json_rejects () =
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("rejects " ^ bad) true
        (Result.is_error (Export.validate_json bad)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "[1] trailing"; "\"unterminated"; "nul" ];
  List.iter
    (fun good ->
      Alcotest.(check bool) ("accepts " ^ good) true
        (Result.is_ok (Export.validate_json good)))
    [ "{}"; "[]"; "null"; "-1.5e3"; "{\"a\":[1,{\"b\":\"\\u00e9\"}]}" ]

(* --- trace context --- *)

let test_trace_context () =
  (* with_trace works with the gate off — correlation must not depend on
     span recording being enabled *)
  Obs.disable ();
  Alcotest.(check string) "no ambient trace" "" (Span.current_trace ());
  let seen = ref [] in
  Span.with_trace "aaaa" (fun () ->
      seen := Span.current_trace () :: !seen;
      Span.with_trace "bbbb" (fun () -> seen := Span.current_trace () :: !seen);
      (* inner scope restored the outer context *)
      seen := Span.current_trace () :: !seen);
  Alcotest.(check (list string))
    "nesting restores the outer context" [ "aaaa"; "bbbb"; "aaaa" ]
    (List.rev !seen);
  Alcotest.(check string) "context cleared at exit" "" (Span.current_trace ());
  (* restored even when the thunk raises *)
  (try Span.with_trace "cccc" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check string) "restored on raise" "" (Span.current_trace ());
  (* empty id is transparent *)
  Span.with_trace "dddd" (fun () ->
      Span.with_trace "" (fun () ->
          Alcotest.(check string) "with_trace \"\" keeps the context" "dddd"
            (Span.current_trace ())));
  (* spans recorded inside the scope carry the trace id *)
  with_recording (fun () ->
      Span.with_trace "eeee" (fun () -> Span.with_span "in" (fun () -> ()));
      Span.with_span "out" (fun () -> ());
      let find name = List.find (fun (s : Span.span) -> s.name = name) (Span.spans ()) in
      Alcotest.(check string) "span inherits trace" "eeee" (find "in").trace;
      Alcotest.(check string) "span outside has none" "" (find "out").trace)

let test_fresh_trace_deterministic () =
  let draw () =
    let rng = Rng.of_string "trace-id-stream" in
    List.init 5 (fun _ -> Span.fresh_trace rng)
  in
  let a = draw () and b = draw () in
  Alcotest.(check (list string)) "same stream, same ids" a b;
  List.iter
    (fun id ->
      Alcotest.(check int) "32 hex chars" 32 (String.length id);
      String.iter
        (fun c ->
          if not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) then
            Alcotest.failf "non-hex char %c in trace id %s" c id)
        id)
    a;
  Alcotest.(check bool) "successive draws differ" true
    (List.length (List.sort_uniq compare a) = List.length a)

(* --- flight recorder --- *)

let test_log_ring_and_pins () =
  let t = Log.create ~capacity:8 () in
  Alcotest.(check int) "fresh recorder empty" 0 (Log.count t);
  (* a pinned milestone, then a flood that evicts the whole ring *)
  Log.record ~pin:true ~attrs:[ ("shard", "1") ] t "store_replay";
  for i = 1 to 100 do
    Log.record ~level:Log.Debug t (Printf.sprintf "bulk-%d" i)
  done;
  Alcotest.(check int) "count survives eviction" 101 (Log.count t);
  let events = Log.recent t in
  (* ring of 8 plus the pinned event the flood overwrote *)
  Alcotest.(check int) "ring + pin" 9 (List.length events);
  let first = List.hd events in
  Alcotest.(check string) "pinned event survived the flood" "store_replay"
    first.Log.name;
  Alcotest.(check int) "pinned event keeps its seq" 0 first.Log.seq;
  Alcotest.(check (list (pair string string)))
    "attrs preserved" [ ("shard", "1") ] first.Log.attrs;
  (* oldest-first total order by seq, no duplicates *)
  let seqs = List.map (fun (e : Log.event) -> e.Log.seq) events in
  Alcotest.(check (list int)) "sorted, deduplicated" (List.sort_uniq compare seqs) seqs;
  (* max keeps the newest *)
  (match Log.recent ~max:2 t with
  | [ a; b ] ->
    Alcotest.(check string) "newest kept" "bulk-100" b.Log.name;
    Alcotest.(check string) "second newest" "bulk-99" a.Log.name
  | l -> Alcotest.failf "recent ~max:2 returned %d events" (List.length l));
  (* events recorded inside a trace scope carry it *)
  Span.with_trace "ffff" (fun () -> Log.record t "traced");
  (match List.rev (Log.recent t) with
  | e :: _ -> Alcotest.(check string) "event inherits trace" "ffff" e.Log.trace
  | [] -> Alcotest.fail "no events");
  (* every event line is valid JSON, and so is the dump's each line *)
  List.iter
    (fun e ->
      match Export.validate_json (Log.event_json e) with
      | Ok () -> ()
      | Error err -> Alcotest.failf "event_json invalid: %s" err)
    (Log.recent t);
  Log.clear t;
  Alcotest.(check int) "clear empties" 0 (List.length (Log.recent t));
  Alcotest.(check int) "clear resets count" 0 (Log.count t)

let test_log_concurrent () =
  let t = Log.create ~capacity:256 () in
  let domains = 4 and per_domain = 5_000 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Log.record t (Printf.sprintf "d%d-%d" d i)
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no lost events" (domains * per_domain) (Log.count t);
  let events = Log.recent t in
  Alcotest.(check int) "ring full" 256 (List.length events);
  let seqs = List.map (fun (e : Log.event) -> e.Log.seq) events in
  Alcotest.(check (list int)) "seqs unique and ordered"
    (List.sort_uniq compare seqs) seqs

(* --- JSONL parse-back --- *)

let test_jsonl_roundtrip_and_orphans () =
  with_recording @@ fun () ->
  Span.with_trace "00ff00ff00ff00ff00ff00ff00ff00ff" (fun () ->
      Span.with_span "outer" ~attrs:[ ("k", "v\"w") ] (fun () ->
          Span.with_span "inner" (fun () -> ())));
  let spans = Span.spans () in
  let parsed =
    match Export.parse_jsonl (Export.to_jsonl ~pid:7 spans) with
    | Ok l -> l
    | Error e -> Alcotest.failf "parse_jsonl: %s" e
  in
  Alcotest.(check int) "all lines back" (List.length spans) (List.length parsed);
  List.iter2
    (fun (orig : Span.span) ((pid, back) : int * Span.span) ->
      Alcotest.(check int) "pid carried" 7 pid;
      Alcotest.(check int) "id" orig.id back.id;
      Alcotest.(check int) "parent" orig.parent back.parent;
      Alcotest.(check string) "trace" orig.trace back.trace;
      Alcotest.(check string) "name" orig.name back.name;
      Alcotest.(check (list (pair string string))) "attrs" orig.attrs back.attrs)
    spans parsed;
  Alcotest.(check (list (pair int int)))
    "well-formed lanes have no orphans" [] (Export.orphans parsed);
  (* a span whose parent was never recorded (a lost process, a SIGKILL)
     is reported per pid; the same ids under another pid are unrelated *)
  let inner = List.find (fun (s : Span.span) -> s.name = "inner") spans in
  let cut = List.filter (fun ((_, s) : int * Span.span) -> s.id = inner.id) parsed in
  Alcotest.(check (list (pair int int)))
    "missing parent detected" [ (7, inner.parent) ] (Export.orphans cut);
  let other_lane = List.map (fun ((_, s) : int * Span.span) -> (8, s)) parsed in
  Alcotest.(check (list (pair int int)))
    "ids are per-process: another pid's copy cannot adopt the orphan"
    [ (7, inner.parent) ]
    (Export.orphans (cut @ other_lane))

(* --- the null backend --- *)

let test_null_backend () =
  Obs.disable ();
  Span.reset ();
  let reg = Metrics.create_registry () in
  let c = Metrics.counter reg "gated_total" in
  let v = Span.with_span "ignored" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span transparent" 42 v;
  Alcotest.(check int) "nothing recorded" 0 (Span.count ());
  Obs.incr c;
  Alcotest.(check int) "gated incr dropped" 0 (Metrics.counter_value c);
  (* zero allocation: a long gated loop must not grow the minor heap *)
  let n = 200_000 in
  let minor0 = Gc.minor_words () in
  for _ = 1 to n do
    Obs.incr c;
    ignore (Span.with_span "noop" Fun.id)
  done;
  let per_op = (Gc.minor_words () -. minor0) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "allocation-free when disabled (%.4f words/op)" per_op)
    true (per_op < 0.01)

let tests =
  [
    Alcotest.test_case "counter concurrency" `Quick test_counter_concurrent;
    Alcotest.test_case "histogram concurrency" `Quick test_histogram_concurrent;
    Alcotest.test_case "get-or-create" `Quick test_get_or_create;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "prometheus render" `Quick test_prometheus_render;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span survives raise" `Quick test_span_recorded_on_raise;
    Alcotest.test_case "span multi-domain merge" `Quick test_span_multi_domain;
    Alcotest.test_case "chrome + jsonl export" `Quick test_chrome_export;
    Alcotest.test_case "json validator" `Quick test_validate_json_rejects;
    Alcotest.test_case "trace context" `Quick test_trace_context;
    Alcotest.test_case "fresh_trace deterministic" `Quick
      test_fresh_trace_deterministic;
    Alcotest.test_case "flight recorder ring + pins" `Quick
      test_log_ring_and_pins;
    Alcotest.test_case "flight recorder concurrency" `Quick test_log_concurrent;
    Alcotest.test_case "jsonl parse-back + orphans" `Quick
      test_jsonl_roundtrip_and_orphans;
    Alcotest.test_case "null backend" `Quick test_null_backend;
  ]
