open Overgen_workload
open Overgen_mdfg

let compile_one ?(tuned = false) ?(unroll = 4) name =
  let k = Kernels.find name in
  let r = List.hd (Kernels.regions_for ~tuned k) in
  Compile.compile_region k r ~tuned ~unroll

let test_all_kernels_compile_all_unrolls () =
  List.iter
    (fun (k : Ir.kernel) ->
      let c = Compile.compile ~tuned:false k in
      List.iter
        (fun variants ->
          Alcotest.(check bool)
            (k.name ^ " has variants") true
            (List.length variants >= 1);
          List.iter
            (fun (v : Compile.variant) ->
              match Dfg.validate v.dfg with
              | Ok () -> ()
              | Error e -> Alcotest.failf "%s u=%d: %s" k.name v.unroll e)
            variants)
        c.per_region)
    Kernels.all

let test_cse_shares_fft_twiddle_products () =
  (* The fft butterfly shares TR/TI between the +/- outputs: 4 multiplies,
     not 8, per butterfly. *)
  let v = compile_one ~unroll:1 "fft" in
  let h = Dfg.op_histogram v.dfg in
  Alcotest.(check (option int)) "4 muls" (Some 4)
    (List.assoc_opt Overgen_adg.Op.Mul h)

let test_unroll_scales_muls () =
  let v1 = compile_one ~unroll:1 "mm" in
  let v4 = compile_one ~unroll:4 "mm" in
  let muls v =
    Option.value ~default:0 (List.assoc_opt Overgen_adg.Op.Mul (Dfg.op_histogram v.Compile.dfg))
  in
  Alcotest.(check int) "1 mul" 1 (muls v1);
  Alcotest.(check int) "4 muls" 4 (muls v4);
  Alcotest.(check (float 1e-6)) "firings divide"
    (v1.Compile.firings /. 4.0) v4.Compile.firings

let test_fir_stationary_reuse () =
  (* b[j] does not involve the innermost loop ii: stationary port reuse of
     128 and only 8*199 fetches (paper Section IV-B). *)
  let v = compile_one ~unroll:4 "fir" in
  let b_stream =
    List.find
      (fun (s : Stream.t) -> s.array = "b" && s.dir = Stream.Read)
      v.streams
  in
  Alcotest.(check (float 1e-6)) "stationary 64" 64.0 b_stream.reuse.stationary;
  Alcotest.(check (float 1.0)) "traffic 16*199" (16.0 *. 199.0) b_stream.reuse.traffic;
  Alcotest.(check int) "single lane despite unroll" 1 b_stream.lanes

let test_fir_footprint_matches_paper_example () =
  (* Paper Figure 5 computes footprint 255 for a[io*32+ii+j] with trips
     4/128/32; our fir uses trips 8/199/128 so footprint is
     7*128 + 127 + 198 + 1 = 1222. *)
  let v = compile_one ~unroll:1 "fir" in
  let a_stream =
    List.find (fun (s : Stream.t) -> s.array = "a" && s.dir = Stream.Read) v.streams
  in
  Alcotest.(check int) "a footprint" 1222 a_stream.reuse.footprint

let test_fir_recurrence_detected () =
  let v = compile_one ~unroll:4 "fir" in
  let c_write =
    List.find (fun (s : Stream.t) -> s.array = "c" && s.dir = Stream.Write) v.streams
  in
  match c_write.recurrence with
  | Some r ->
    Alcotest.(check int) "64 concurrent instances" 64 r.concurrent;
    Alcotest.(check (float 1e-6)) "199 recurrences" 199.0 r.recurs;
    Alcotest.(check (float 2.0)) "memory traffic collapses to footprint" 1024.0
      r.mem_traffic
  | None -> Alcotest.fail "fir c should be a recurrence candidate"

let test_mm_recurrence () =
  let v = compile_one ~unroll:1 "mm" in
  let c_write =
    List.find (fun (s : Stream.t) -> s.array = "c" && s.dir = Stream.Write) v.streams
  in
  match c_write.recurrence with
  | Some r -> Alcotest.(check int) "32 concurrent" 32 r.concurrent
  | None -> Alcotest.fail "mm c should be recurrence candidate"

let test_acc_inner_for_innermost_reduction () =
  (* crs reduces over the innermost loop: the accumulation stays inside a PE
     (acc instruction), the write stream trickles one element per row. *)
  let v = compile_one ~unroll:1 "crs" in
  let has_acc =
    List.exists
      (fun (n : Dfg.node) ->
        match n.kind with Dfg.Inst { acc; _ } -> acc | _ -> false)
      (Dfg.nodes v.dfg)
  in
  Alcotest.(check bool) "acc instruction present" true has_acc;
  let y_write =
    List.find (fun (s : Stream.t) -> s.array = "y" && s.dir = Stream.Write) v.streams
  in
  Alcotest.(check bool) "write traffic is footprint-sized" true
    (y_write.reuse.traffic <= 495.0);
  Alcotest.(check bool) "no recurrence engine needed" true
    (y_write.recurrence = None)

let test_indirect_stream () =
  let v = compile_one ~unroll:1 "crs" in
  let x_read =
    List.find (fun (s : Stream.t) -> s.array = "x" && s.dir = Stream.Read) v.streams
  in
  (match x_read.access with
  | Stream.Indirect { via } -> Alcotest.(check string) "via cidx" "cidx" via
  | Stream.Linear _ -> Alcotest.fail "x should be indirect");
  Alcotest.(check int) "footprint is whole array" 494 x_read.reuse.footprint;
  (* and the engine-internal index stream exists *)
  let idx =
    List.find (fun (s : Stream.t) -> s.array = "cidx" && s.port = None) v.streams
  in
  Alcotest.(check bool) "index stream has traffic" true (idx.reuse.traffic > 0.0)

let test_elementwise_no_recurrence () =
  let v = compile_one ~unroll:8 "accumulate" in
  List.iter
    (fun (s : Stream.t) ->
      Alcotest.(check bool) "no recurrence on element-wise RMW" true
        (s.recurrence = None))
    v.streams

let test_channel_ext_pure_movement () =
  let v = compile_one ~unroll:8 "channel-ext" in
  Alcotest.(check int) "no compute instructions" 0 (Dfg.inst_count v.dfg);
  Alcotest.(check int) "one input port" 1 (List.length (Dfg.inputs v.dfg));
  Alcotest.(check int) "one output port" 1 (List.length (Dfg.outputs v.dfg));
  let r = List.find (fun (s : Stream.t) -> s.dir = Stream.Read) v.streams in
  match r.access with
  | Stream.Linear { stride } -> Alcotest.(check int) "stride 4" 4 stride
  | Stream.Indirect _ -> Alcotest.fail "linear expected"

let test_stencil_unroll_overlap_cse () =
  (* Automatic unrolling does NOT merge overlapping window loads across
     lanes (the paper's compiler limitation, Q2) - 18 loads at u=2 - while
     the manually unrolled (tuned) source expresses the overlap in one body
     and gets CSE'd down to 12. *)
  let v1 = compile_one ~unroll:1 "blur" in
  let v2 = compile_one ~unroll:2 "blur" in
  let vt = compile_one ~tuned:true ~unroll:1 "blur" in
  let lanes v =
    List.fold_left
      (fun acc (s : Stream.t) ->
        if s.dir = Stream.Read then acc + s.lanes else acc)
      0 v.Compile.streams
  in
  Alcotest.(check int) "9 loads at u=1" 9 (lanes v1);
  Alcotest.(check int) "18 loads at u=2 (no cross-lane merge)" 18 (lanes v2);
  Alcotest.(check int) "12 loads for the tuned 2-wide body" 12 (lanes vt)

let test_tuned_stencil2d_reduces_traffic_per_output () =
  let u = compile_one ~tuned:false ~unroll:1 "stencil-2d" in
  let t = compile_one ~tuned:true ~unroll:1 "stencil-2d" in
  let read_traffic v =
    List.fold_left
      (fun acc (s : Stream.t) ->
        if s.dir = Stream.Read && s.array = "sin" then acc +. s.reuse.traffic
        else acc)
      0.0 v.Compile.streams
  in
  let out_elems v =
    List.fold_left
      (fun acc (s : Stream.t) ->
        if s.dir = Stream.Write then acc +. s.reuse.traffic else acc)
      0.0 v.Compile.streams
  in
  let per_output v = read_traffic v /. out_elems v in
  Alcotest.(check bool) "tuned reads less per output" true
    (per_output t < per_output u)

let test_summary_table2_shape () =
  let c = Compile.compile (Kernels.find "fir") in
  let s = Compile.summarize c in
  Alcotest.(check bool) "ivp >= 3" true (s.n_in_ports >= 3);
  Alcotest.(check int) "2 arrays + filter" 3 s.n_arrays;
  Alcotest.(check bool) "muls counted" true (s.n_mul >= 1)

let test_widest () =
  let c = Compile.compile (Kernels.find "mm") in
  let w = Compile.widest (List.hd c.per_region) in
  Alcotest.(check int) "widest unroll 16" 16 w.unroll

let test_variant_counts_capped_by_trip () =
  let c = Compile.compile (Kernels.find "ellpack") in
  (* innermost trip is 4: unrolls 1,2,4 only *)
  let unrolls = List.map (fun v -> v.Compile.unroll) (List.hd c.per_region) in
  Alcotest.(check (list int)) "capped" [ 1; 2; 4 ] unrolls

let prop_traffic_at_least_footprint =
  QCheck.Test.make ~name:"stream traffic >= footprint/lanes heuristic" ~count:1
    QCheck.unit
    (fun () ->
      List.for_all
        (fun (k : Ir.kernel) ->
          let c = Compile.compile k in
          List.for_all
            (List.for_all (fun (v : Compile.variant) ->
                 List.for_all
                   (fun (s : Stream.t) ->
                     s.reuse.traffic >= 0.0 && s.reuse.footprint >= 1)
                   v.streams))
            c.per_region)
        Kernels.all)

let prop_firings_times_unroll_is_iters =
  QCheck.Test.make ~name:"firings * unroll = iterations" ~count:1 QCheck.unit
    (fun () ->
      List.for_all
        (fun (k : Ir.kernel) ->
          let c = Compile.compile k in
          List.for_all
            (List.for_all (fun (v : Compile.variant) ->
                 Float.abs ((v.firings *. float_of_int v.unroll) -. v.iters) < 1e-6))
            c.per_region)
        Kernels.all)

let prop_dfg_outputs_have_producers =
  QCheck.Test.make ~name:"every DFG validates across tuned variants" ~count:1
    QCheck.unit
    (fun () ->
      List.for_all
        (fun (k : Ir.kernel) ->
          let c = Compile.compile ~tuned:true k in
          List.for_all
            (List.for_all (fun (v : Compile.variant) ->
                 match Dfg.validate v.dfg with Ok () -> true | Error _ -> false))
            c.per_region)
        Kernels.all)

let test_content_hash_deterministic () =
  List.iter
    (fun name ->
      let k = Kernels.find name in
      let h1 = Compile.hash_compiled (Compile.compile k) in
      let h2 = Compile.hash_compiled (Compile.compile k) in
      Alcotest.(check string) (name ^ " hash reproducible") h1 h2)
    [ "fir"; "gemm"; "blur" ];
  let all = List.map (fun k -> Compile.hash_compiled (Compile.compile k)) Kernels.all in
  Alcotest.(check int) "19 kernels, 19 distinct hashes" (List.length all)
    (List.length (List.sort_uniq String.compare all));
  let v1 = compile_one "fir" ~unroll:2 and v2 = compile_one "fir" ~unroll:4 in
  Alcotest.(check bool) "unroll changes the variant hash" false
    (Compile.hash_variant v1 = Compile.hash_variant v2)

let tests =
  [
    Alcotest.test_case "all kernels compile" `Quick test_all_kernels_compile_all_unrolls;
    Alcotest.test_case "content hashes" `Quick test_content_hash_deterministic;
    Alcotest.test_case "fft CSE" `Quick test_cse_shares_fft_twiddle_products;
    Alcotest.test_case "unroll scales ops" `Quick test_unroll_scales_muls;
    Alcotest.test_case "fir stationary reuse" `Quick test_fir_stationary_reuse;
    Alcotest.test_case "fir footprint" `Quick test_fir_footprint_matches_paper_example;
    Alcotest.test_case "fir recurrence" `Quick test_fir_recurrence_detected;
    Alcotest.test_case "mm recurrence" `Quick test_mm_recurrence;
    Alcotest.test_case "crs acc-inner" `Quick test_acc_inner_for_innermost_reduction;
    Alcotest.test_case "crs indirect" `Quick test_indirect_stream;
    Alcotest.test_case "elementwise rmw" `Quick test_elementwise_no_recurrence;
    Alcotest.test_case "channel-ext movement" `Quick test_channel_ext_pure_movement;
    Alcotest.test_case "blur overlap CSE" `Quick test_stencil_unroll_overlap_cse;
    Alcotest.test_case "tuned stencil traffic" `Quick test_tuned_stencil2d_reduces_traffic_per_output;
    Alcotest.test_case "summary shape" `Quick test_summary_table2_shape;
    Alcotest.test_case "widest" `Quick test_widest;
    Alcotest.test_case "unroll cap" `Quick test_variant_counts_capped_by_trip;
    QCheck_alcotest.to_alcotest prop_traffic_at_least_footprint;
    QCheck_alcotest.to_alcotest prop_firings_times_unroll_is_iters;
    QCheck_alcotest.to_alcotest prop_dfg_outputs_have_producers;
  ]
