(* Cross-cutting property tests on the core data structures and invariants:
   affine algebra, capability sets, bitstream packing, compiler invariants
   over randomized unrolls, mutation/repair robustness. *)

open Overgen_adg
open Overgen_workload
open Overgen_mdfg
open Overgen_scheduler
module Bitstream = Overgen_isa.Bitstream
module Mutate = Overgen_dse.Mutate
module Rng = Overgen_util.Rng

(* ---------------- affine algebra ---------------- *)

let gen_affine =
  QCheck.Gen.(
    let* n = int_range 0 3 in
    let* terms =
      list_size (return n)
        (pair (oneofl [ "i"; "j"; "k"; "t" ]) (int_range (-8) 8))
    in
    let* const = int_range (-16) 16 in
    return (Ir.affine ~const terms))

let arb_affine = QCheck.make gen_affine

let prop_affine_subst_identity =
  QCheck.Test.make ~name:"subst with scale 1 offset 0 is identity" ~count:200
    arb_affine
    (fun a ->
      Ir.affine_equal a (Ir.affine_subst_scaled a ~var:"i" ~scale:1 ~offset:0))

let prop_affine_subst_compose =
  QCheck.Test.make ~name:"subst composes multiplicatively" ~count:200 arb_affine
    (fun a ->
      (* substituting i -> 2i+1 then i -> 2i equals i -> 4i+1 *)
      let once = Ir.affine_subst_scaled a ~var:"i" ~scale:2 ~offset:1 in
      let twice = Ir.affine_subst_scaled once ~var:"i" ~scale:2 ~offset:0 in
      let direct = Ir.affine_subst_scaled a ~var:"i" ~scale:4 ~offset:1 in
      Ir.affine_equal twice direct)

let prop_affine_shift =
  QCheck.Test.make ~name:"shift adds to the constant only" ~count:200
    QCheck.(pair arb_affine (int_range (-100) 100))
    (fun (a, off) ->
      let b = Ir.affine_shift a off in
      b.Ir.const = a.Ir.const + off && b.Ir.terms = a.Ir.terms)

(* ---------------- capability sets ---------------- *)

let arb_ops = QCheck.(list_of_size (Gen.int_range 1 6) (oneofl Op.all))

let prop_cap_product =
  QCheck.Test.make ~name:"of_ops builds the full cartesian product" ~count:100
    arb_ops
    (fun ops ->
      let dts = [ Dtype.I16; Dtype.F64 ] in
      let caps = Op.Cap.of_ops ops dts in
      List.for_all
        (fun op -> List.for_all (fun dt -> Op.Cap.supports caps op dt) dts)
        ops)

let prop_cap_counts =
  QCheck.Test.make ~name:"cap cardinality = ops x dtypes (deduped)" ~count:100
    arb_ops
    (fun ops ->
      let uniq = List.sort_uniq Op.compare ops in
      let caps = Op.Cap.of_ops ops [ Dtype.I32; Dtype.I64; Dtype.F32 ] in
      Op.Cap.cardinal caps = 3 * List.length uniq)

(* ---------------- bitstream packing ---------------- *)

let arb_fields =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 1 40)
        (let* bits = int_range 1 63 in
         let* v = int_range 0 ((1 lsl min bits 30) - 1) in
         let* node = int_range 0 100 in
         return { Bitstream.node; tag = "f"; value = Int64.of_int v; bits }))

let prop_bitstream_bit_count =
  QCheck.Test.make ~name:"bitstream bit count is the sum of field widths"
    ~count:100 arb_fields
    (fun fields ->
      let bs = List.fold_left Bitstream.add Bitstream.empty fields in
      Bitstream.bit_count bs
      = List.fold_left (fun acc f -> acc + f.Bitstream.bits) 0 fields)

let prop_bitstream_verifies =
  QCheck.Test.make ~name:"every emitted bitstream verifies" ~count:100 arb_fields
    (fun fields ->
      let bs = List.fold_left Bitstream.add Bitstream.empty fields in
      Bitstream.verify (Bitstream.words bs))

let prop_bitstream_unpack =
  QCheck.Test.make ~name:"packed fields are recoverable in order" ~count:100
    arb_fields
    (fun fields ->
      let bs = List.fold_left Bitstream.add Bitstream.empty fields in
      let w = Bitstream.words bs in
      let payload = Array.sub w 1 (Array.length w - 2) in
      (* re-extract each field LSB-first *)
      let pos = ref 0 in
      List.for_all
        (fun f ->
          let v = ref 0L in
          for b = f.Bitstream.bits - 1 downto 0 do
            let word = (!pos + b) / 64 and off = (!pos + b) mod 64 in
            let bit = Int64.logand (Int64.shift_right_logical payload.(word) off) 1L in
            v := Int64.logor (Int64.shift_left !v 1) bit
          done;
          pos := !pos + f.Bitstream.bits;
          !v = f.Bitstream.value)
        fields)

(* ---------------- compiler invariants over random unrolls ---------------- *)

let arb_kernel_unroll =
  QCheck.make
    QCheck.Gen.(
      let* k = oneofl Kernels.names in
      let* u = oneofl [ 1; 2; 4; 8 ] in
      return (k, u))

let prop_compile_dfg_valid =
  QCheck.Test.make ~name:"every compiled DFG validates" ~count:60
    arb_kernel_unroll
    (fun (name, u) ->
      let k = Kernels.find name in
      let r = List.hd k.Ir.regions in
      let u = min u (Ir.trip_max (Ir.innermost r).trip) in
      let v = Compile.compile_region k r ~tuned:false ~unroll:u in
      match Dfg.validate v.dfg with Ok () -> true | Error _ -> false)

let prop_streams_have_ports_or_index =
  QCheck.Test.make ~name:"streams bind to ports except index streams" ~count:60
    arb_kernel_unroll
    (fun (name, u) ->
      let k = Kernels.find name in
      let r = List.hd k.Ir.regions in
      let u = min u (Ir.trip_max (Ir.innermost r).trip) in
      let v = Compile.compile_region k r ~tuned:false ~unroll:u in
      List.for_all
        (fun (s : Stream.t) ->
          match s.port with
          | Some p -> (
            match (Dfg.node v.dfg p).kind with
            | Dfg.Input _ -> s.dir = Stream.Read
            | Dfg.Output _ -> s.dir = Stream.Write
            | _ -> false)
          | None -> s.dir = Stream.Read)
        v.streams)

let prop_port_slots_cover_ports =
  QCheck.Test.make ~name:"port_slots cover every DFG port" ~count:60
    arb_kernel_unroll
    (fun (name, u) ->
      let k = Kernels.find name in
      let r = List.hd k.Ir.regions in
      let u = min u (Ir.trip_max (Ir.innermost r).trip) in
      let v = Compile.compile_region k r ~tuned:false ~unroll:u in
      List.for_all
        (fun (n : Dfg.node) ->
          match n.kind with
          | Dfg.Input _ | Dfg.Output _ -> List.mem_assoc n.id v.port_slots
          | _ -> true)
        (Dfg.nodes v.dfg))

(* ---------------- mutation / repair robustness ---------------- *)

let prop_mutations_never_break_graph_invariants =
  QCheck.Test.make ~name:"random mutation chains keep the ADG self-consistent"
    ~count:15
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let sys = Builder.general_overlay () in
      let pool = Op.Cap.of_ops [ Op.Add; Op.Mul; Op.Div ] [ Dtype.I64; Dtype.F64 ] in
      let usage = Mutate.usage_of [] in
      let adg = ref sys.Sys_adg.adg in
      for _ = 1 to 30 do
        let adg', _ = Mutate.propose rng ~preserve:false ~caps_pool:pool !adg usage in
        adg := adg'
      done;
      (* every edge endpoint must exist and be legal *)
      List.for_all
        (fun (a, b) ->
          Adg.mem !adg a && Adg.mem !adg b
          && Adg.edge_legal (Adg.comp_exn !adg a) (Adg.comp_exn !adg b))
        (Adg.edges !adg))

let prop_repair_or_fail_cleanly =
  QCheck.Test.make ~name:"repair either succeeds validly or errors" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let sys = Builder.general_overlay () in
      match Spatial.schedule_app sys (Compile.compile (Kernels.find "vecmax")) with
      | Error _ -> false
      | Ok scheds ->
        let usage = Mutate.usage_of scheds in
        let pool = Op.Cap.of_ops [ Op.Max ] [ Dtype.I16 ] in
        let adg, _ =
          Mutate.propose rng ~preserve:true ~caps_pool:pool sys.Sys_adg.adg usage
        in
        let sys' = Sys_adg.with_adg sys adg in
        (match Spatial.repair sys' scheds with
        | Ok repaired ->
          List.for_all
            (fun s -> match Schedule.validate s sys' with Ok () -> true | Error _ -> false)
            repaired
        | Error _ -> true))

(* ---------------- serialization round trip ---------------- *)

let prop_serial_round_trip =
  QCheck.Test.make
    ~name:"sysADG serialization round-trips (text, structure, fingerprint)"
    ~count:25
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let base = Builder.general_overlay () in
      let pool =
        Op.Cap.of_ops [ Op.Add; Op.Mul; Op.Max ] [ Dtype.I16; Dtype.F64 ]
      in
      let usage = Mutate.usage_of [] in
      let adg = ref base.Sys_adg.adg in
      for _ = 1 to Rng.int rng 20 do
        let adg', _ = Mutate.propose rng ~preserve:false ~caps_pool:pool !adg usage in
        adg := adg'
      done;
      let system = Rng.choose rng (System.candidates ()) in
      let sys = Sys_adg.make !adg system in
      let text = Serial.to_string sys in
      match Serial.of_string text with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
      | Ok sys' ->
        (* re-serializing the parse reproduces the text exactly, so the
           structural fingerprint is stable across save/load *)
        Serial.to_string sys' = text
        && Serial.fingerprint sys' = Serial.fingerprint sys)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_serial_round_trip;
      prop_affine_subst_identity;
      prop_affine_subst_compose;
      prop_affine_shift;
      prop_cap_product;
      prop_cap_counts;
      prop_bitstream_bit_count;
      prop_bitstream_verifies;
      prop_bitstream_unpack;
      prop_compile_dfg_valid;
      prop_streams_have_ports_or_index;
      prop_port_slots_cover_ports;
      prop_mutations_never_break_graph_invariants;
      prop_repair_or_fail_cleanly;
    ]
