/* frobnicate is not an operation of the PE ISA */
#pragma dsa kernel name(t) suite(dsp) dtype(f64) lanes(1) size(4)
static double og_x[8];
void t_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(r) hls(clean)
  for (int i = 0; i < 4; ++i) {
    og_x[i] = frobnicate(og_x[i]);
  }
}
}
