/* the pragma names a kernel but no matching function exists */
#pragma dsa kernel name(t) suite(dsp) dtype(f64) lanes(1) size(4)
static double og_x[8];
void other_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(r) hls(clean)
  for (int i = 0; i < 4; ++i) {
    og_x[i] = og_x[i];
  }
}
}
