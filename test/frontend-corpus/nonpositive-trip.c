/* a loop with a non-positive trip count */
#pragma dsa kernel name(t) suite(machsuite) dtype(i64) lanes(1) size(4)
static int64_t og_x[8];
void t_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(r) hls(clean)
  for (int i = 0; i < 0; ++i) {
    og_x[i] = og_x[i];
  }
}
}
