/* the translation unit ends mid-region */
#pragma dsa kernel name(t) suite(vision) dtype(i16) lanes(1) size(4)
static int16_t og_x[8];
void t_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(r) hls(clean)
  for (int i = 0; i < 4; ++i) {
    og_x[i] = og_x[i];
