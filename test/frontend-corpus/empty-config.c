/* a config block with no decoupled regions */
#pragma dsa kernel name(t) suite(dsp) dtype(f32) lanes(1) size(4)
static float og_x[8];
void t_kernel(void) {
#pragma dsa config
{
}
}
