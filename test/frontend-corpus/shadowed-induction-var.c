/* the inner loop reuses the outer induction variable */
#pragma dsa kernel name(t) suite(dsp) dtype(i32) lanes(1) size(4)
static int32_t og_x[64];
void t_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(r) hls(clean)
  for (int i = 0; i < 4; ++i) {
    for (int i = 0; i < 4; ++i) {
      og_x[i] = og_x[i];
    }
  }
}
}
