/* select needs three operands and is not expressible in the dialect */
#pragma dsa kernel name(t) suite(dsp) dtype(f64) lanes(1) size(4)
static double og_x[8];
static double og_y[8];
void t_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(r) hls(clean)
  for (int i = 0; i < 4; ++i) {
    og_x[i] = select(og_x[i], og_y[i]);
  }
}
}
