/* subscript reaches index 11 of an 8-element array */
#pragma dsa kernel name(t) suite(dsp) dtype(i32) lanes(1) size(4)
static int32_t og_x[8];
void t_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(r) hls(clean)
  for (int i = 0; i < 4; ++i) {
    og_x[2*i + 5] = og_x[i];
  }
}
}
