#pragma dsa kernel name(t) suite(dsp) dtype(f64) lanes(1) size(4)
static double og_x[8];
/* this comment never ends
void t_kernel(void) {
