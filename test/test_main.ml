let () =
  Alcotest.run "overgen"
    [
      ("util", Test_util.tests);
      ("par", Test_par.tests);
      ("fault", Test_fault.tests);
      ("adg", Test_adg.tests);
      ("workload", Test_workload.tests);
      ("mdfg", Test_mdfg.tests);
      ("scheduler", Test_scheduler.tests);
      ("perf+sim", Test_perf_sim.tests);
      ("fpga+mlp", Test_fpga_mlp.tests);
      ("dse+hls", Test_dse_hls.tests);
      ("dse islands", Test_dse_islands.tests);
      ("isa+rtl+exec", Test_isa_rtl_exec.tests);
      ("obs", Test_obs.tests);
      ("core", Test_core.tests);
      ("store", Test_store.tests);
      ("service", Test_service.tests);
      ("net", Test_net.tests);
      ("fleet", Test_fleet.tests);
      ("frontend", Test_frontend.tests);
      ("properties", Test_properties.tests);
    ]
