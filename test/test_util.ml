open Overgen_util

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let sub = Rng.split a in
  let x = Rng.int sub 1000000 in
  let y = Rng.int a 1000000 in
  Alcotest.(check bool) "streams differ" true (x <> y || Rng.int sub 10 >= 0)

let test_rng_streams_anchor () =
  (* stream 0 must be exactly [create seed]: the island-model DSE's
     single-island determinism contract rests on it *)
  let anchor = List.hd (Rng.streams 42 4) in
  let direct = Rng.create 42 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "stream 0 is create seed" (Rng.int direct 1_000_000)
      (Rng.int anchor 1_000_000)
  done

let test_rng_streams_nonoverlapping () =
  (* 10k draws from each of 4 streams over a ~2^62 space: any repeated
     value would mean overlapping substreams *)
  let streams = Rng.streams 9 4 in
  let seen = Hashtbl.create 80_000 in
  List.iter
    (fun s ->
      for _ = 1 to 10_000 do
        let v = Rng.int s max_int in
        Alcotest.(check bool) "draw not seen in any stream" false
          (Hashtbl.mem seen v);
        Hashtbl.add seen v ()
      done)
    streams;
  Alcotest.(check int) "40k distinct draws" 40_000 (Hashtbl.length seen)

let test_rng_streams_deterministic () =
  let a = Rng.streams 5 3 and b = Rng.streams 5 3 in
  List.iter2
    (fun x y ->
      for _ = 1 to 50 do
        Alcotest.(check int) "same stream list" (Rng.int x 1000) (Rng.int y 1000)
      done)
    a b;
  Alcotest.check_raises "n < 1 rejected"
    (Invalid_argument "Rng.streams: n < 1") (fun () -> ignore (Rng.streams 1 0))

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let f = Rng.float r 3.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 3.5)
  done

let test_rng_of_string_stable () =
  let a = Rng.of_string "experiment-1" and b = Rng.of_string "experiment-1" in
  Alcotest.(check int) "string seeding stable" (Rng.int a 9999) (Rng.int b 9999)

let test_rng_choose_weighted () =
  let r = Rng.create 3 in
  let count = ref 0 in
  for _ = 1 to 1000 do
    if Rng.choose_weighted r [ (9.0, `A); (1.0, `B) ] = `A then incr count
  done;
  Alcotest.(check bool) "heavy side dominates" true (!count > 800)

let test_rng_gaussian () =
  let r = Rng.create 5 in
  let n = 5000 in
  let samples = List.init n (fun _ -> Rng.gaussian r ~mean:10.0 ~stddev:2.0) in
  let m = Stats.mean samples in
  Alcotest.(check bool) "mean near 10" true (Float.abs (m -. 10.0) < 0.2);
  let sd = Stats.stddev samples in
  Alcotest.(check bool) "stddev near 2" true (Float.abs (sd -. 2.0) < 0.2)

let test_rng_shuffle_permutation () =
  let r = Rng.create 11 in
  let l = List.init 50 Fun.id in
  let s = Rng.shuffle r l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  check_float "singleton" 5.0 (Stats.geomean [ 5.0 ]);
  check_float "empty" 0.0 (Stats.geomean [])

let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_weighted_geomean () =
  check_float "uniform weights match geomean"
    (Stats.geomean [ 2.0; 8.0 ])
    (Stats.weighted_geomean [ (1.0, 2.0); (1.0, 8.0) ]);
  check_float "all weight on one value" 8.0
    (Stats.weighted_geomean [ (0.0, 2.0); (5.0, 8.0) ])

let test_median () =
  check_float "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ])

let test_round_up_pow2 () =
  Alcotest.(check int) "1" 1 (Stats.round_up_pow2 1);
  Alcotest.(check int) "3" 4 (Stats.round_up_pow2 3);
  Alcotest.(check int) "17" 32 (Stats.round_up_pow2 17)

let test_div_ceil () =
  Alcotest.(check int) "7/2" 4 (Stats.div_ceil 7 2);
  Alcotest.(check int) "8/2" 4 (Stats.div_ceil 8 2)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let s =
    Render.table ~headers:[ "a"; "b" ] ~rows:[ [ "1"; "2" ]; [ "333" ] ]
  in
  Alcotest.(check bool) "contains header cell" true (contains s "| a");
  Alcotest.(check bool) "pads short rows" true (contains s "| 333 |")

let test_bar_chart_runs () =
  let s =
    Render.bar_chart ~log2:true ~title:"t"
      [ ("w1", [ 0.5; 2.0 ]); ("w2", [ 1.0; 4.0 ]) ]
      ~series:[ "x"; "y" ]
  in
  Alcotest.(check bool) "non-empty" true (String.length s > 10)

let test_line_chart_runs () =
  let s =
    Render.line_chart ~title:"conv" ~xlabel:"h" ~ylabel:"ipc"
      [ ("a", [ (0.0, 1.0); (1.0, 2.0) ]); ("b", [ (0.5, 1.5) ]) ]
  in
  Alcotest.(check bool) "non-empty" true (String.length s > 10)

(* Property tests. *)
let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int always in bounds" ~count:500
    QCheck.(pair int (int_range 1 10000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_geomean_between_min_max =
  QCheck.Test.make ~name:"geomean between min and max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.001 1000.0))
    (fun l ->
      let g = Stats.geomean l in
      let lo = List.fold_left Float.min infinity l in
      let hi = List.fold_left Float.max neg_infinity l in
      g >= lo *. 0.999 && g <= hi *. 1.001)

let prop_shuffle_preserves =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair int (small_list int))
    (fun (seed, l) ->
      let r = Rng.create seed in
      List.sort compare (Rng.shuffle r l) = List.sort compare l)

let test_percentile () =
  let l = [ 15.0; 20.0; 35.0; 40.0; 50.0 ] in
  check_float "p0 is the min" 15.0 (Stats.percentile ~p:0.0 l);
  check_float "p100 is the max" 50.0 (Stats.percentile ~p:100.0 l);
  check_float "p50 matches median" (Stats.median l) (Stats.percentile ~p:50.0 l);
  (* linear interpolation between closest ranks: p30 of 5 points sits
     1.2 ranks in, 20% of the way from 20 to 35 *)
  check_float "p30 interpolates" 23.0 (Stats.percentile ~p:30.0 l);
  check_float "empty list" 0.0 (Stats.percentile ~p:90.0 []);
  check_float "singleton" 7.0 (Stats.percentile ~p:99.0 [ 7.0 ]);
  check_float "unsorted input" 23.0 (Stats.percentile ~p:30.0 [ 50.0; 20.0; 35.0; 15.0; 40.0 ]);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Stats.percentile ~p:101.0 l))

let test_percentiles () =
  let l = [ 15.0; 20.0; 35.0; 40.0; 50.0 ] in
  let a = Array.of_list [ 50.0; 20.0; 35.0; 15.0; 40.0 ] in
  let ps = [ 0.0; 30.0; 50.0; 100.0 ] in
  (* the single-sort batch agrees with repeated percentile calls *)
  List.iter2
    (fun p got -> check_float (Printf.sprintf "p%.0f" p) (Stats.percentile ~p l) got)
    ps
    (Stats.percentiles a ps);
  Alcotest.(check (list (float 1e-9)))
    "empty data gives all zeros" [ 0.0; 0.0; 0.0 ]
    (Stats.percentiles [||] [ 50.0; 90.0; 99.0 ]);
  Alcotest.(check (list (float 1e-9))) "empty ps" [] (Stats.percentiles a []);
  Alcotest.(check (float 1e-9))
    "input not mutated"
    50.0 a.(0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentiles: p outside [0, 100]") (fun () ->
      ignore (Stats.percentiles a [ 50.0; -1.0 ]))

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile lies within [min, max]" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 30) (float_range (-500.0) 1000.0))
        (float_range 0.0 100.0))
    (fun (l, p) ->
      let v = Stats.percentile ~p l in
      let lo = List.fold_left min infinity l
      and hi = List.fold_left max neg_infinity l in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_pow2 =
  QCheck.Test.make ~name:"round_up_pow2 is a bounding power" ~count:200
    QCheck.(int_range 1 100000)
    (fun n ->
      let p = Stats.round_up_pow2 n in
      p >= n && p < 2 * n && p land (p - 1) = 0)

let tests =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng streams anchor" `Quick test_rng_streams_anchor;
    Alcotest.test_case "rng streams non-overlapping" `Slow
      test_rng_streams_nonoverlapping;
    Alcotest.test_case "rng streams deterministic" `Quick
      test_rng_streams_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng of_string" `Quick test_rng_of_string_stable;
    Alcotest.test_case "rng weighted choice" `Quick test_rng_choose_weighted;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "geomean rejects <=0" `Quick test_geomean_rejects_nonpositive;
    Alcotest.test_case "weighted geomean" `Quick test_weighted_geomean;
    Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentiles batch" `Quick test_percentiles;
    Alcotest.test_case "round_up_pow2" `Quick test_round_up_pow2;
    Alcotest.test_case "div_ceil" `Quick test_div_ceil;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "bar chart" `Quick test_bar_chart_runs;
    Alcotest.test_case "line chart" `Quick test_line_chart_runs;
    QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_geomean_between_min_max;
    QCheck_alcotest.to_alcotest prop_shuffle_preserves;
    QCheck_alcotest.to_alcotest prop_percentile_bounded;
    QCheck_alcotest.to_alcotest prop_pow2;
  ]
