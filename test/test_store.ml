(* The durable artifact store: CRC32 vectors, codec framing and schema
   rejection, log roundtrips and reopen, crash recovery (torn tails,
   checksum corruption — both organic and fault-injected), offline
   verification, compaction, and the write-through/warm-start behaviour of
   the schedule cache, the overlay registry, and the compile service on
   top of it. *)

open Overgen_workload
module Store = Overgen_store.Store
module Crc32 = Overgen_store.Crc32
module Codec = Overgen_store.Codec
module Cache = Overgen_service.Cache
module Registry = Overgen_service.Registry
module Service = Overgen_service.Service
module Trace = Overgen_service.Trace
module Fault = Overgen_fault.Fault
module Serial = Overgen_adg.Serial

let model = lazy (Overgen.train_model ~seed:21 ())

let general =
  lazy
    (match Overgen.general ~model:(Lazy.force model) Kernels.all with
    | Ok o -> o
    | Error e -> failwith ("general overlay: " ^ e))

(* every test works on a throwaway file removed afterwards *)
let with_path f =
  let path = Filename.temp_file "overgen-test-store" ".store" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".compact" ])
    (fun () -> f path)

let open_ok path =
  match Store.open_ ~path () with
  | Ok s -> s
  | Error e -> Alcotest.failf "open %s: %s" path e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* ---------------- crc32 + codec ---------------- *)

let test_crc32 () =
  (* the standard IEEE 802.3 check value *)
  Alcotest.(check int32) "check vector" 0xCBF43926l (Crc32.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.string "");
  Alcotest.(check int32) "windowed = whole"
    (Crc32.string "123456789")
    (Crc32.string ~off:3 ~len:9 "xyz123456789xyz");
  Alcotest.(check bool) "one flipped bit changes the digest" true
    (Crc32.string "123456789" <> Crc32.string "123456788")

let test_codec_framing () =
  let b = Buffer.create 64 in
  Codec.put_u8 b 7;
  Codec.put_u32 b 0xDEADBEEF;
  Codec.put_string b "";
  Codec.put_string b "hello";
  let s = Buffer.contents b in
  let pos = ref 0 in
  Alcotest.(check int) "u8" 7 (Codec.get_u8 s pos);
  Alcotest.(check int) "u32" 0xDEADBEEF (Codec.get_u32 s pos);
  Alcotest.(check string) "empty string" "" (Codec.get_string s pos);
  Alcotest.(check string) "string" "hello" (Codec.get_string s pos);
  Alcotest.(check int) "consumed exactly" (String.length s) !pos;
  Alcotest.check_raises "short buffer" Codec.Truncated (fun () ->
      ignore (Codec.get_u32 "ab" (ref 0)))

let test_codec_schema_rejection () =
  let blob = Codec.encode_marshal ~schema:"thing-v1" (1, "x") in
  (match (Codec.decode_marshal ~schema:"thing-v1" blob : (int * string, string) result) with
  | Ok v -> Alcotest.(check (pair int string)) "roundtrip" (1, "x") v
  | Error e -> Alcotest.failf "roundtrip failed: %s" e);
  (match (Codec.decode_marshal ~schema:"thing-v2" blob : (int * string, string) result) with
  | Ok _ -> Alcotest.fail "old schema must be rejected, not misparsed"
  | Error _ -> ());
  (match (Codec.decode_marshal ~schema:"thing-v1" "garbage" : (int * string, string) result) with
  | Ok _ -> Alcotest.fail "garbage must be rejected"
  | Error _ -> ())

let test_codec_sys_roundtrip () =
  let sys = Overgen_adg.Builder.general_overlay () in
  match Codec.decode_sys (Codec.encode_sys sys) with
  | Ok sys' ->
    Alcotest.(check string) "same structure" (Serial.fingerprint sys)
      (Serial.fingerprint sys')
  | Error e -> Alcotest.failf "decode_sys: %s" e

(* ---------------- log roundtrip + reopen ---------------- *)

let test_roundtrip_and_reopen () =
  with_path @@ fun path ->
  let s = open_ok path in
  Store.put s ~ns:"a" ~key:"k1" "v1";
  Store.put s ~ns:"a" ~key:"k2" "v2";
  Store.put s ~ns:"b" ~key:"k1" "other-ns";
  Store.put s ~ns:"a" ~key:"k1" "v1'";
  Store.delete s ~ns:"a" ~key:"k2";
  Alcotest.(check (option string)) "last write wins" (Some "v1'")
    (Store.get s ~ns:"a" ~key:"k1");
  Alcotest.(check (option string)) "deleted" None (Store.get s ~ns:"a" ~key:"k2");
  Alcotest.(check bool) "mem" true (Store.mem s ~ns:"b" ~key:"k1");
  Alcotest.(check int) "live" 2 (Store.length s);
  Alcotest.(check (list (pair string string)))
    "rewrite moved k1 to the end of write order"
    [ ("k1", "v1'") ]
    (Store.bindings s ~ns:"a");
  Store.close s;
  Alcotest.check_raises "closed store raises" (Failure "Store: store is closed")
    (fun () -> ignore (Store.get s ~ns:"a" ~key:"k1"));
  let s = open_ok path in
  let st = Store.last_open_stats s in
  Alcotest.(check int) "5 records scanned" 5 st.records;
  Alcotest.(check int) "2 live after replay" 2 st.live;
  Alcotest.(check int) "clean log" 0 st.truncated_bytes;
  Alcotest.(check (option string)) "persisted across reopen" (Some "v1'")
    (Store.get s ~ns:"a" ~key:"k1");
  Alcotest.(check (list (pair string int))) "namespaces"
    [ ("a", 1); ("b", 1) ]
    (Store.namespaces s);
  Store.close s

let test_empty_file_is_fresh_store () =
  with_path @@ fun path ->
  (* with_path's temp file exists and is empty — exactly the case *)
  Alcotest.(check int) "size 0" 0 (Unix.stat path).Unix.st_size;
  let s = open_ok path in
  Store.put s ~ns:"n" ~key:"k" "v";
  Store.close s

(* ---------------- crash recovery ---------------- *)

(* simulate a crash mid-append: chop [cut] bytes off the end of the log *)
let torn_tail path cut =
  let contents = read_file path in
  write_file path (String.sub contents 0 (String.length contents - cut))

let test_torn_tail_truncated () =
  with_path @@ fun path ->
  let s = open_ok path in
  Store.put s ~ns:"n" ~key:"a" "aaaa";
  Store.put s ~ns:"n" ~key:"b" "bbbb";
  Store.put s ~ns:"n" ~key:"c" "cccc";
  Store.close s;
  let full = String.length (read_file path) in
  torn_tail path 3;
  let s = open_ok path in
  let st = Store.last_open_stats s in
  Alcotest.(check int) "two records survive" 2 st.records;
  Alcotest.(check bool) "loss reported" true (st.truncated_bytes > 0);
  Alcotest.(check (option string)) "a intact" (Some "aaaa")
    (Store.get s ~ns:"n" ~key:"a");
  Alcotest.(check (option string)) "b intact" (Some "bbbb")
    (Store.get s ~ns:"n" ~key:"b");
  Alcotest.(check (option string)) "c lost" None (Store.get s ~ns:"n" ~key:"c");
  (* recovery repaired the file: appends go to a clean boundary *)
  Store.put s ~ns:"n" ~key:"d" "dddd";
  Store.close s;
  Alcotest.(check bool) "file shrank then grew cleanly" true
    (String.length (read_file path) < full + 4);
  let s = open_ok path in
  Alcotest.(check int) "clean after repair" 0
    (Store.last_open_stats s).truncated_bytes;
  Alcotest.(check (option string)) "post-repair append survived" (Some "dddd")
    (Store.get s ~ns:"n" ~key:"d");
  Store.close s

let test_midfile_corruption_detected () =
  with_path @@ fun path ->
  let s = open_ok path in
  Store.put s ~ns:"n" ~key:"a" "aaaa";
  let before_b = Store.file_bytes s in
  Store.put s ~ns:"n" ~key:"b" "bbbb";
  Store.put s ~ns:"n" ~key:"c" "cccc";
  Store.close s;
  (* flip one payload byte inside record b *)
  let contents = read_file path in
  let bytes = Bytes.of_string contents in
  let i = before_b + 12 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x01));
  write_file path (Bytes.to_string bytes);
  (match Store.verify ~path with
  | Ok _ -> Alcotest.fail "verify must detect the corruption"
  | Error { Store.offset; reason; intact_records } ->
    Alcotest.(check int) "offset of the damaged record" before_b offset;
    Alcotest.(check string) "reason" "checksum mismatch" reason;
    Alcotest.(check int) "one intact record precedes it" 1 intact_records);
  (* recovery keeps everything before the damage, drops the rest *)
  let s = open_ok path in
  Alcotest.(check (option string)) "a survives" (Some "aaaa")
    (Store.get s ~ns:"n" ~key:"a");
  Alcotest.(check (option string)) "b dropped" None (Store.get s ~ns:"n" ~key:"b");
  Alcotest.(check (option string)) "c unreachable" None
    (Store.get s ~ns:"n" ~key:"c");
  Store.close s;
  Alcotest.(check bool) "verify passes after repair" true
    (Result.is_ok (Store.verify ~path))

let test_incompatible_header_rejected () =
  with_path @@ fun path ->
  write_file path "overgen-store v999\n";
  (match Store.open_ ~path () with
  | Ok _ -> Alcotest.fail "wrong version must not open"
  | Error _ -> ());
  match Store.verify ~path with
  | Ok _ -> Alcotest.fail "wrong version must not verify"
  | Error { Store.offset; _ } -> Alcotest.(check int) "offset 0" 0 offset

let test_verify_clean () =
  with_path @@ fun path ->
  let s = open_ok path in
  Store.put s ~ns:"n" ~key:"a" "x";
  Store.put s ~ns:"n" ~key:"a" "y";
  Store.close s;
  match Store.verify ~path with
  | Ok st ->
    Alcotest.(check int) "records" 2 st.records;
    Alcotest.(check int) "live" 1 st.live
  | Error { Store.offset; reason; _ } ->
    Alcotest.failf "clean store failed verify at %d: %s" offset reason

(* ---------------- fault injection ---------------- *)

(* Arm only the torn-write point at rate 1: the first put dies mid-record.
   Transient leaves a torn payload, Deterministic a full record with a
   flipped byte; either way the store must reopen with only the intact
   records and `verify` must name the damage. *)
let injected_crash ~transient =
  with_path @@ fun path ->
  let s = open_ok path in
  Store.put s ~ns:"n" ~key:"good" "before the crash";
  let cfg =
    {
      Fault.default_config with
      rate = 1.0;
      transient_fraction = (if transient then 1.0 else 0.0);
      points = [ Fault.Points.store_torn ];
    }
  in
  (match
     Fault.with_faults cfg (fun () -> Store.put s ~ns:"n" ~key:"doomed" "lost")
   with
  | () -> Alcotest.fail "injection did not fire"
  | exception Fault.Injected _ -> ());
  (* the process "crashes" here: the torn/corrupt record is on disk.
     Close without compacting and reopen like a restarted process. *)
  Store.close s;
  (match Store.verify ~path with
  | Ok _ -> Alcotest.fail "verify must flag the injected damage"
  | Error { Store.reason; intact_records; _ } ->
    Alcotest.(check int) "good record intact" 1 intact_records;
    Alcotest.(check string) "damage kind"
      (if transient then "torn record payload" else "checksum mismatch")
      reason);
  let s = open_ok path in
  Alcotest.(check bool) "recovery dropped bytes" true
    ((Store.last_open_stats s).truncated_bytes > 0);
  Alcotest.(check (option string)) "prior record survives"
    (Some "before the crash")
    (Store.get s ~ns:"n" ~key:"good");
  Alcotest.(check (option string)) "torn record lost" None
    (Store.get s ~ns:"n" ~key:"doomed");
  Store.close s

let test_fault_torn_write () = injected_crash ~transient:true
let test_fault_corrupt_write () = injected_crash ~transient:false

let test_fault_retry_after_injection () =
  (* in-process retry: a failed append must not shadow later ones *)
  with_path @@ fun path ->
  let s = open_ok path in
  let cfg =
    {
      Fault.default_config with
      rate = 1.0;
      transient_fraction = 1.0;
      points = [ Fault.Points.store_torn ];
    }
  in
  Fault.arm cfg;
  (try Store.put s ~ns:"n" ~key:"k" "first try" with Fault.Injected _ -> ());
  Fault.disarm ();
  Store.put s ~ns:"n" ~key:"k" "second try";
  Alcotest.(check (option string)) "retry wins" (Some "second try")
    (Store.get s ~ns:"n" ~key:"k");
  Store.close s;
  let s = open_ok path in
  Alcotest.(check int) "no damage on disk" 0
    (Store.last_open_stats s).truncated_bytes;
  Alcotest.(check (option string)) "retry persisted" (Some "second try")
    (Store.get s ~ns:"n" ~key:"k");
  Store.close s

(* ---------------- compaction ---------------- *)

let test_compact () =
  with_path @@ fun path ->
  let s = open_ok path in
  for i = 1 to 50 do
    Store.put s ~ns:"n" ~key:"hot" (Printf.sprintf "version %d" i)
  done;
  Store.put s ~ns:"n" ~key:"cold" "stable";
  Store.delete s ~ns:"n" ~key:"cold";
  let before = Store.file_bytes s in
  Alcotest.(check bool) "dead bytes accumulated" true
    (Store.live_bytes s < before);
  Store.compact s;
  Alcotest.(check bool) "file shrank" true (Store.file_bytes s < before);
  Alcotest.(check int) "live bytes = file payload" (Store.live_bytes s)
    (Store.file_bytes s - String.length "overgen-store v1\n");
  Alcotest.(check (option string)) "data preserved" (Some "version 50")
    (Store.get s ~ns:"n" ~key:"hot");
  Alcotest.(check (option string)) "tombstone gone for good" None
    (Store.get s ~ns:"n" ~key:"cold");
  (* appends after compaction land correctly *)
  Store.put s ~ns:"n" ~key:"new" "post-compact";
  Store.close s;
  let s = open_ok path in
  Alcotest.(check int) "compacted log replays to 2 records" 2
    (Store.last_open_stats s).records;
  Alcotest.(check (option string)) "post-compact append persisted"
    (Some "post-compact")
    (Store.get s ~ns:"n" ~key:"new");
  Store.close s;
  Alcotest.(check bool) "verify after compact" true
    (Result.is_ok (Store.verify ~path))

(* ---------------- cache write-through + warm start ---------------- *)

let test_cache_write_through_and_warm_start () =
  with_path @@ fun path ->
  let s = open_ok path in
  let c = Cache.create ~capacity:8 ~store:s () in
  Alcotest.(check int) "nothing to warm-load" 0 (Cache.warm_loaded c);
  Cache.add c "k1" (Ok []);
  Cache.add c "k2" (Error (Cache.deterministic "unmappable"));
  Cache.add c "k3" (Error (Cache.transient "flaky"));
  Alcotest.(check int) "transient never persisted" 2 (Store.length s);
  Store.close s;
  (* a restarted process: fresh cache over the same file *)
  let s = open_ok path in
  let c = Cache.create ~capacity:8 ~store:s () in
  Alcotest.(check int) "warm-started" 2 (Cache.warm_loaded c);
  (match Cache.find c "k1" with
  | Some (Ok []) -> ()
  | _ -> Alcotest.fail "k1 must warm-start as Ok []");
  (match Cache.find c "k2" with
  | Some (Error { Cache.reason = "unmappable"; transient = false }) -> ()
  | _ -> Alcotest.fail "negative entry must warm-start deterministically");
  Alcotest.(check bool) "transient entry gone" true (Cache.find c "k3" = None);
  Store.close s

let test_cache_eviction_readthrough () =
  with_path @@ fun path ->
  let s = open_ok path in
  let c = Cache.create ~capacity:2 ~store:s () in
  Cache.add c "k1" (Ok []);
  Cache.add c "k2" (Ok []);
  Cache.add c "k3" (Ok []);
  (* k1 evicted from the LRU, but still on disk *)
  Alcotest.(check int) "lru at capacity" 2 (Cache.stats c).entries;
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).evictions;
  Alcotest.(check int) "no store reads yet" 0 (Cache.store_reads c);
  (match Cache.find c "k1" with
  | Some (Ok []) -> ()
  | _ -> Alcotest.fail "evicted entry must be served from the store");
  Alcotest.(check int) "served from disk" 1 (Cache.store_reads c);
  Alcotest.(check bool) "hit counted" true ((Cache.stats c).hits >= 1);
  (* the read-through promoted k1 back into memory: no second disk read *)
  (match Cache.find c "k1" with
  | Some (Ok []) -> ()
  | _ -> Alcotest.fail "promoted entry must hit in memory");
  Alcotest.(check int) "no second store read" 1 (Cache.store_reads c);
  (* warm start replays the full persisted set; the LRU bound applies as
     it would to live traffic, so the oldest write (k1) is evicted from
     memory — but still reachable through the store *)
  Store.close s;
  let s = open_ok path in
  let c = Cache.create ~capacity:2 ~store:s () in
  Alcotest.(check int) "all bindings replayed" 3 (Cache.warm_loaded c);
  Alcotest.(check int) "memory bounded by capacity" 2 (Cache.stats c).entries;
  (match Cache.find c "k1" with
  | Some (Ok []) -> ()
  | _ -> Alcotest.fail "oldest binding still served via read-through");
  Alcotest.(check int) "k1 came from disk" 1 (Cache.store_reads c);
  Store.close s

let test_cache_find_or_compute_persists () =
  with_path @@ fun path ->
  let s = open_ok path in
  let c = Cache.create ~store:s () in
  let runs = ref 0 in
  let compute () = incr runs; Ok [] in
  ignore (Cache.find_or_compute c "k" compute);
  Store.close s;
  let s = open_ok path in
  let c = Cache.create ~store:s () in
  let out, hit = Cache.find_or_compute c "k" compute in
  Alcotest.(check bool) "hit after restart" true hit;
  Alcotest.(check int) "computed exactly once across restarts" 1 !runs;
  (match out with Ok [] -> () | _ -> Alcotest.fail "wrong outcome");
  Store.close s

(* ---------------- registry persistence ---------------- *)

let test_registry_persists () =
  with_path @@ fun path ->
  let overlay = Lazy.force general in
  let s = open_ok path in
  let r = Registry.create ~store:s () in
  (match Registry.register r ~name:"general" overlay with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "register: %s" e);
  Store.close s;
  let s = open_ok path in
  let r = Registry.create ~store:s () in
  Alcotest.(check (list string)) "overlay survives restart" [ "general" ]
    (Registry.names r);
  (match Registry.find r "general" with
  | None -> Alcotest.fail "overlay not found after restart"
  | Some e ->
    Alcotest.(check string) "same structure"
      (Serial.fingerprint overlay.design.sys)
      e.fingerprint);
  (* duplicate registration still refused after a warm start *)
  (match Registry.register r ~name:"general" overlay with
  | Ok _ -> Alcotest.fail "duplicate must be refused"
  | Error _ -> ());
  Store.close s

(* ---------------- service kill-and-restart ---------------- *)

let test_service_kill_and_restart () =
  with_path @@ fun path ->
  let overlay = Lazy.force general in
  let trace =
    Trace.generate
      (Trace.spec ~seed:5 ~requests:30 ~users:3 ~working_set:2
         ~overlays:[ ("general", Kernels.all) ]
         ())
  in
  let serve store =
    let registry = Registry.create ~store () in
    if Registry.names registry = [] then (
      match Registry.register registry ~name:"general" overlay with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "register: %s" e);
    let policy = { Service.default_policy with store = Some store } in
    let svc = Service.create ~policy registry in
    let responses = Service.run svc trace in
    Service.shutdown svc;
    let stats = Cache.stats (Option.get (Service.cache svc)) in
    (responses, stats)
  in
  let digest responses =
    Digest.to_hex
      (Digest.string
         (String.concat ";"
            (List.map
               (fun (r : Service.response) ->
                 Printf.sprintf "%d:%b" r.request.id (Result.is_ok r.result))
               responses)))
  in
  (* first life: compute everything, write through *)
  let s = open_ok path in
  let r1, st1 = serve s in
  Store.close s;
  Alcotest.(check bool) "first life had misses" true (st1.misses > 0);
  (* kill: nothing survives but the store file.  second life must serve
     the whole trace from disk without recomputing anything. *)
  let s = open_ok path in
  let r2, st2 = serve s in
  Store.close s;
  Alcotest.(check int) "no misses after restart" 0 st2.misses;
  Alcotest.(check int) "every request a hit" (List.length trace) st2.hits;
  Alcotest.(check string) "responses identical across restart" (digest r1)
    (digest r2)

let tests =
  [
    Alcotest.test_case "crc32 vectors" `Quick test_crc32;
    Alcotest.test_case "codec framing" `Quick test_codec_framing;
    Alcotest.test_case "codec schema rejection" `Quick
      test_codec_schema_rejection;
    Alcotest.test_case "codec sys roundtrip" `Quick test_codec_sys_roundtrip;
    Alcotest.test_case "roundtrip + reopen" `Quick test_roundtrip_and_reopen;
    Alcotest.test_case "empty file is a fresh store" `Quick
      test_empty_file_is_fresh_store;
    Alcotest.test_case "torn tail truncated" `Quick test_torn_tail_truncated;
    Alcotest.test_case "mid-file corruption detected" `Quick
      test_midfile_corruption_detected;
    Alcotest.test_case "incompatible header rejected" `Quick
      test_incompatible_header_rejected;
    Alcotest.test_case "verify clean" `Quick test_verify_clean;
    Alcotest.test_case "fault: torn write" `Quick test_fault_torn_write;
    Alcotest.test_case "fault: corrupt write" `Quick test_fault_corrupt_write;
    Alcotest.test_case "fault: retry after injection" `Quick
      test_fault_retry_after_injection;
    Alcotest.test_case "compaction" `Quick test_compact;
    Alcotest.test_case "cache write-through + warm start" `Quick
      test_cache_write_through_and_warm_start;
    Alcotest.test_case "cache eviction read-through" `Quick
      test_cache_eviction_readthrough;
    Alcotest.test_case "find_or_compute persists" `Quick
      test_cache_find_or_compute_persists;
    Alcotest.test_case "registry persists" `Slow test_registry_persists;
    Alcotest.test_case "service kill-and-restart" `Slow
      test_service_kill_and_restart;
  ]
