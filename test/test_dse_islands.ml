(* The island-model parallel DSE: determinism, the anchor-island dominance
   contract, and the merged-trace invariants. *)

open Overgen_workload
module Dse = Overgen_dse.Dse
module Predict = Overgen_mlp.Predict
module Serial = Overgen_adg.Serial

let model = lazy (Predict.train ~seed:11 ())

let apps = lazy (Dse.compile_apps ~tuned:false [ Kernels.find "vecmax" ])

let cfg ?(iterations = 40) ?(islands = 1) ?(migration_interval = 10) seed =
  { Dse.default_config with seed; iterations; islands; migration_interval }

let explore config = Dse.explore ~config ~model:(Lazy.force model) (Lazy.force apps)

let same_result (a : Dse.result) (b : Dse.result) =
  Alcotest.(check (float 1e-12)) "same objective" a.best.objective b.best.objective;
  Alcotest.(check string) "same design"
    (Serial.fingerprint a.best.sys) (Serial.fingerprint b.best.sys);
  Alcotest.(check int) "same trace length" (List.length a.trace) (List.length b.trace);
  List.iter2
    (fun (x : Dse.trace_point) (y : Dse.trace_point) ->
      Alcotest.(check int) "same island" x.island y.island;
      Alcotest.(check int) "same iter" x.iter y.iter;
      Alcotest.(check (float 1e-12)) "same est_ipc" x.est_ipc y.est_ipc;
      Alcotest.(check (float 1e-12)) "same modeled time" x.modeled_hours
        y.modeled_hours)
    a.trace b.trace;
  Alcotest.(check int) "same accepted" a.stats.accepted b.stats.accepted;
  Alcotest.(check int) "same invalid" a.stats.invalid b.stats.invalid;
  Alcotest.(check int) "same repaired" a.stats.repaired b.stats.repaired;
  Alcotest.(check int) "same incremental" a.stats.incremental b.stats.incremental;
  Alcotest.(check int) "same rescheduled" a.stats.rescheduled b.stats.rescheduled

let test_single_island_deterministic () =
  same_result (explore (cfg 21)) (explore (cfg 21))

let test_parallel_deterministic () =
  (* worker timing must not leak into the result *)
  same_result
    (explore (cfg ~iterations:80 ~islands:4 22))
    (explore (cfg ~iterations:80 ~islands:4 22))

let test_anchor_dominance () =
  (* same modeled-hours budget: islands run concurrently, so 4 islands x 40
     iterations cost the same modeled time as a sequential 40-iteration run.
     Island 0 replays the sequential chain exactly (same stream, never
     adopts migrants), so the parallel best can only dominate. *)
  let seq = explore (cfg ~iterations:40 21) in
  let par = explore (cfg ~iterations:160 ~islands:4 21) in
  Alcotest.(check bool) "parallel best >= sequential best" true
    (par.best.objective >= seq.best.objective -. 1e-9)

let test_trace_covers_budget_and_is_monotone () =
  let r = explore (cfg ~iterations:50 ~islands:3 23) in
  Alcotest.(check int) "one trace point per iteration of the total budget" 50
    (List.length r.trace);
  let rec monotone = function
    | (a : Dse.trace_point) :: (b : Dse.trace_point) :: rest ->
      Alcotest.(check bool) "modeled_hours monotone" true
        (a.modeled_hours <= b.modeled_hours +. 1e-12);
      monotone (b :: rest)
    | _ -> ()
  in
  monotone r.trace;
  (* every island contributed, with island-local iteration numbering *)
  List.iter
    (fun isl ->
      let pts =
        List.filter (fun (t : Dse.trace_point) -> t.island = isl) r.trace
      in
      Alcotest.(check bool)
        (Printf.sprintf "island %d contributed" isl)
        true
        (List.length pts > 0);
      List.iteri
        (fun i (t : Dse.trace_point) ->
          Alcotest.(check int) "island-local iters are 1..n" (i + 1) t.iter)
        (List.sort
           (fun (a : Dse.trace_point) (b : Dse.trace_point) ->
             compare a.iter b.iter)
           pts))
    [ 0; 1; 2 ];
  (* modeled time is the slowest island, not the sum *)
  let island_hours isl =
    List.fold_left
      (fun acc (t : Dse.trace_point) ->
        if t.island = isl then Float.max acc t.modeled_hours else acc)
      0.0 r.trace
  in
  let max_h = List.fold_left (fun m i -> Float.max m (island_hours i)) 0.0 [ 0; 1; 2 ] in
  Alcotest.(check (float 1e-9)) "modeled_hours = max island" max_h r.modeled_hours

let test_config_validation () =
  Alcotest.check_raises "islands < 1"
    (Invalid_argument "Dse.explore: islands < 1") (fun () ->
      ignore (explore { (cfg 1) with islands = 0 }));
  Alcotest.check_raises "migration_interval < 1"
    (Invalid_argument "Dse.explore: migration_interval < 1") (fun () ->
      ignore (explore { (cfg 1) with migration_interval = 0 }));
  Alcotest.check_raises "resume without checkpoint"
    (Invalid_argument "Dse.explore: resume requested without a checkpoint")
    (fun () ->
      ignore
        (Dse.explore ~config:(cfg 1) ~resume:true ~model:(Lazy.force model)
           (Lazy.force apps)))

(* ---------------- checkpoint / resume ---------------- *)

module Store = Overgen_store.Store

let with_store f =
  let path = Filename.temp_file "overgen-test-dse" ".store" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Store.open_ ~path () with
      | Ok s -> Fun.protect ~finally:(fun () -> Store.close s) (fun () -> f s)
      | Error e -> Alcotest.failf "open store: %s" e)

(* The kill-and-restart contract: interrupt a run at a migration barrier,
   resume it from the durable checkpoint in a "new process" (nothing
   shared but the store file), and the result must be bit-identical to the
   uninterrupted run — same design, same trace, same stats, same draws. *)
let resume_matches_uninterrupted ~islands ~stop_after =
  let config = cfg ~iterations:80 ~islands 27 in
  let full = explore config in
  with_store @@ fun store ->
  let checkpoint = { Dse.store; key = "run"; interval = 1 } in
  let partial =
    Dse.explore ~config ~checkpoint ~stop_after_rounds:stop_after
      ~model:(Lazy.force model) (Lazy.force apps)
  in
  Alcotest.(check bool) "interrupted run did less work" true
    (List.length partial.trace < List.length full.trace);
  let resumed =
    Dse.explore ~config ~checkpoint ~resume:true ~model:(Lazy.force model)
      (Lazy.force apps)
  in
  same_result full resumed

let test_resume_single_island () =
  resume_matches_uninterrupted ~islands:1 ~stop_after:3

let test_resume_parallel () =
  (* 80 iterations over 4 islands at interval 10 is 2 migration rounds:
     stopping after 1 interrupts mid-run with migrated elites in play *)
  resume_matches_uninterrupted ~islands:4 ~stop_after:1

let test_resume_refuses_other_config () =
  with_store @@ fun store ->
  let checkpoint = { Dse.store; key = "run"; interval = 1 } in
  ignore
    (Dse.explore ~config:(cfg 27) ~checkpoint ~stop_after_rounds:1
       ~model:(Lazy.force model) (Lazy.force apps));
  (* same key, different seed: the signature stamp must refuse it *)
  Alcotest.check_raises "signature mismatch refused"
    (Failure
       "Dse.explore: checkpoint was written by a different configuration or \
        workload")
    (fun () ->
      ignore
        (Dse.explore ~config:(cfg 28) ~checkpoint ~resume:true
           ~model:(Lazy.force model) (Lazy.force apps)))

let test_resume_requires_checkpoint_record () =
  with_store @@ fun store ->
  let checkpoint = { Dse.store; key = "never-written"; interval = 1 } in
  Alcotest.check_raises "missing checkpoint"
    (Failure "Dse.explore: no checkpoint to resume from") (fun () ->
      ignore
        (Dse.explore ~config:(cfg 27) ~checkpoint ~resume:true
           ~model:(Lazy.force model) (Lazy.force apps)))

let test_completed_run_resumes_to_itself () =
  (* resuming a finished run replays nothing and returns the same result *)
  with_store @@ fun store ->
  let config = cfg ~iterations:40 29 in
  let checkpoint = { Dse.store; key = "run"; interval = 2 } in
  let done_ =
    Dse.explore ~config ~checkpoint ~model:(Lazy.force model) (Lazy.force apps)
  in
  let again =
    Dse.explore ~config ~checkpoint ~resume:true ~model:(Lazy.force model)
      (Lazy.force apps)
  in
  same_result done_ again

let tests =
  [
    Alcotest.test_case "single island deterministic" `Quick
      test_single_island_deterministic;
    Alcotest.test_case "parallel run deterministic" `Slow
      test_parallel_deterministic;
    Alcotest.test_case "anchor dominance" `Slow test_anchor_dominance;
    Alcotest.test_case "merged trace invariants" `Slow
      test_trace_covers_budget_and_is_monotone;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "resume matches uninterrupted (1 island)" `Quick
      test_resume_single_island;
    Alcotest.test_case "resume matches uninterrupted (4 islands)" `Slow
      test_resume_parallel;
    Alcotest.test_case "resume refuses a different config" `Quick
      test_resume_refuses_other_config;
    Alcotest.test_case "resume requires a checkpoint record" `Quick
      test_resume_requires_checkpoint_record;
    Alcotest.test_case "completed run resumes to itself" `Quick
      test_completed_run_resumes_to_itself;
  ]
