(* The island-model parallel DSE: determinism, the anchor-island dominance
   contract, and the merged-trace invariants. *)

open Overgen_workload
module Dse = Overgen_dse.Dse
module Predict = Overgen_mlp.Predict
module Serial = Overgen_adg.Serial

let model = lazy (Predict.train ~seed:11 ())

let apps = lazy (Dse.compile_apps ~tuned:false [ Kernels.find "vecmax" ])

let cfg ?(iterations = 40) ?(islands = 1) ?(migration_interval = 10) seed =
  { Dse.default_config with seed; iterations; islands; migration_interval }

let explore config = Dse.explore ~config ~model:(Lazy.force model) (Lazy.force apps)

let same_result (a : Dse.result) (b : Dse.result) =
  Alcotest.(check (float 1e-12)) "same objective" a.best.objective b.best.objective;
  Alcotest.(check string) "same design"
    (Serial.fingerprint a.best.sys) (Serial.fingerprint b.best.sys);
  Alcotest.(check int) "same trace length" (List.length a.trace) (List.length b.trace);
  List.iter2
    (fun (x : Dse.trace_point) (y : Dse.trace_point) ->
      Alcotest.(check int) "same island" x.island y.island;
      Alcotest.(check int) "same iter" x.iter y.iter;
      Alcotest.(check (float 1e-12)) "same est_ipc" x.est_ipc y.est_ipc;
      Alcotest.(check (float 1e-12)) "same modeled time" x.modeled_hours
        y.modeled_hours)
    a.trace b.trace;
  Alcotest.(check int) "same accepted" a.stats.accepted b.stats.accepted;
  Alcotest.(check int) "same invalid" a.stats.invalid b.stats.invalid;
  Alcotest.(check int) "same repaired" a.stats.repaired b.stats.repaired;
  Alcotest.(check int) "same rescheduled" a.stats.rescheduled b.stats.rescheduled

let test_single_island_deterministic () =
  same_result (explore (cfg 21)) (explore (cfg 21))

let test_parallel_deterministic () =
  (* worker timing must not leak into the result *)
  same_result
    (explore (cfg ~iterations:80 ~islands:4 22))
    (explore (cfg ~iterations:80 ~islands:4 22))

let test_anchor_dominance () =
  (* same modeled-hours budget: islands run concurrently, so 4 islands x 40
     iterations cost the same modeled time as a sequential 40-iteration run.
     Island 0 replays the sequential chain exactly (same stream, never
     adopts migrants), so the parallel best can only dominate. *)
  let seq = explore (cfg ~iterations:40 21) in
  let par = explore (cfg ~iterations:160 ~islands:4 21) in
  Alcotest.(check bool) "parallel best >= sequential best" true
    (par.best.objective >= seq.best.objective -. 1e-9)

let test_trace_covers_budget_and_is_monotone () =
  let r = explore (cfg ~iterations:50 ~islands:3 23) in
  Alcotest.(check int) "one trace point per iteration of the total budget" 50
    (List.length r.trace);
  let rec monotone = function
    | (a : Dse.trace_point) :: (b : Dse.trace_point) :: rest ->
      Alcotest.(check bool) "modeled_hours monotone" true
        (a.modeled_hours <= b.modeled_hours +. 1e-12);
      monotone (b :: rest)
    | _ -> ()
  in
  monotone r.trace;
  (* every island contributed, with island-local iteration numbering *)
  List.iter
    (fun isl ->
      let pts =
        List.filter (fun (t : Dse.trace_point) -> t.island = isl) r.trace
      in
      Alcotest.(check bool)
        (Printf.sprintf "island %d contributed" isl)
        true
        (List.length pts > 0);
      List.iteri
        (fun i (t : Dse.trace_point) ->
          Alcotest.(check int) "island-local iters are 1..n" (i + 1) t.iter)
        (List.sort
           (fun (a : Dse.trace_point) (b : Dse.trace_point) ->
             compare a.iter b.iter)
           pts))
    [ 0; 1; 2 ];
  (* modeled time is the slowest island, not the sum *)
  let island_hours isl =
    List.fold_left
      (fun acc (t : Dse.trace_point) ->
        if t.island = isl then Float.max acc t.modeled_hours else acc)
      0.0 r.trace
  in
  let max_h = List.fold_left (fun m i -> Float.max m (island_hours i)) 0.0 [ 0; 1; 2 ] in
  Alcotest.(check (float 1e-9)) "modeled_hours = max island" max_h r.modeled_hours

let test_config_validation () =
  Alcotest.check_raises "islands < 1"
    (Invalid_argument "Dse.explore: islands < 1") (fun () ->
      ignore (explore { (cfg 1) with islands = 0 }));
  Alcotest.check_raises "migration_interval < 1"
    (Invalid_argument "Dse.explore: migration_interval < 1") (fun () ->
      ignore (explore { (cfg 1) with migration_interval = 0 }))

let tests =
  [
    Alcotest.test_case "single island deterministic" `Quick
      test_single_island_deterministic;
    Alcotest.test_case "parallel run deterministic" `Slow
      test_parallel_deterministic;
    Alcotest.test_case "anchor dominance" `Slow test_anchor_dominance;
    Alcotest.test_case "merged trace invariants" `Slow
      test_trace_covers_budget_and_is_monotone;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]
