(* The fleet subsystem: deficit-round-robin fairness properties, tenant
   spec parsing, deterministic token-bucket quotas, exactly-one-response
   under fault injection, and the retire → restart → verify round trip
   that guards against orphaned durable cache records. *)

open Overgen_workload
module Registry = Overgen_service.Registry
module Cache = Overgen_service.Cache
module Service = Overgen_service.Service
module Telemetry = Overgen_service.Telemetry
module Store = Overgen_store.Store
module Fault = Overgen_fault.Fault
module Tenant = Overgen_fleet.Tenant
module Drr = Overgen_fleet.Drr
module Admission = Overgen_fleet.Admission
module Manager = Overgen_fleet.Manager
module Share = Overgen_fleet.Share

let model = lazy (Overgen.train_model ~seed:21 ())

let general =
  lazy
    (match Overgen.general ~model:(Lazy.force model) Kernels.all with
    | Ok o -> o
    | Error e -> failwith ("general overlay: " ^ e))

(* a cheap second overlay with its own fingerprint, for retire tests *)
let decoy =
  lazy
    (Overgen.generate
       ~config:{ Overgen_dse.Dse.default_config with iterations = 40; seed = 5 }
       ~model:(Lazy.force model)
       [ Kernels.find "fir" ])

(* ---------------- DRR properties ---------------- *)

let gen_weights =
  QCheck.Gen.(
    let* n = int_range 2 4 in
    let* ws = list_size (return n) (int_range 1 10) in
    return (List.mapi (fun i w -> (Printf.sprintf "t%d" i, w)) ws))

(* Work conservation: while anything is queued, dequeue yields, and a
   full drain returns exactly what was enqueued. *)
let prop_work_conserving =
  QCheck.Test.make ~name:"drr: work-conserving, drains exactly" ~count:100
    (QCheck.make
       QCheck.Gen.(
         let* ws = gen_weights in
         let* counts =
           list_size (return (List.length ws)) (int_range 0 30)
         in
         return (ws, counts)))
    (fun (weights, counts) ->
      let q = Drr.create () in
      List.iter (fun (id, w) -> Drr.add_tenant q ~id ~weight:w) weights;
      let total = ref 0 in
      List.iteri
        (fun i (id, _) ->
          let n = List.nth counts i in
          total := !total + n;
          for j = 0 to n - 1 do
            Drr.enqueue q ~id (i * 1000 + j)
          done)
        weights;
      let drained = ref 0 in
      let ok = ref true in
      while Drr.length q > 0 do
        match Drr.dequeue q with
        | Some _ -> incr drained
        | None -> ok := false; raise Exit
      done;
      !ok && !drained = !total && Drr.dequeue q = None)

(* Long-run share: with every tenant backlogged, a whole number of ring
   rounds serves each tenant exactly (weight / sum) of the dequeues. *)
let prop_share_tracks_weight =
  QCheck.Test.make ~name:"drr: backlogged share equals weight" ~count:100
    (QCheck.make gen_weights) (fun weights ->
      let q = Drr.create () in
      let wsum = List.fold_left (fun a (_, w) -> a + w) 0 weights in
      let rounds = 20 in
      List.iter
        (fun (id, w) ->
          Drr.add_tenant q ~id ~weight:w;
          for j = 0 to (rounds * w) + 5 do
            Drr.enqueue q ~id j
          done)
        weights;
      let served = Hashtbl.create 8 in
      for _ = 1 to rounds * wsum do
        match Drr.dequeue q with
        | Some (id, _) ->
          Hashtbl.replace served id
            (1 + Option.value ~default:0 (Hashtbl.find_opt served id))
        | None -> raise Exit
      done;
      List.for_all
        (fun (id, w) ->
          Option.value ~default:0 (Hashtbl.find_opt served id) = rounds * w)
        weights)

(* No starvation: a weight-1 tenant under a saturating weight-10 tenant
   appears at least once in every sum-of-weights window of dequeues. *)
let prop_no_starvation =
  QCheck.Test.make ~name:"drr: weight-1 never starved by weight-10" ~count:50
    (QCheck.make (QCheck.Gen.int_range 3 20)) (fun rounds ->
      let q = Drr.create () in
      Drr.add_tenant q ~id:"heavy" ~weight:10;
      Drr.add_tenant q ~id:"light" ~weight:1;
      for j = 0 to (rounds * 12) - 1 do
        Drr.enqueue q ~id:"heavy" j;
        Drr.enqueue q ~id:"light" j
      done;
      let order = ref [] in
      for _ = 1 to rounds * 11 do
        match Drr.dequeue q with
        | Some (id, _) -> order := id :: !order
        | None -> raise Exit
      done;
      let order = Array.of_list (List.rev !order) in
      let ok = ref true in
      for w0 = 0 to Array.length order - 11 do
        let has_light = ref false in
        for i = w0 to w0 + 10 do
          if order.(i) = "light" then has_light := true
        done;
        if not !has_light then ok := false
      done;
      !ok)

(* ---------------- tenant specs ---------------- *)

let test_tenant_parse () =
  (match Tenant.parse "gold:10,silver:3:interactive,bronze:1:batch:25@0.5" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok [ g; s; b ] ->
    Alcotest.(check int) "gold weight" 10 g.Tenant.weight;
    Alcotest.(check bool) "silver class" true
      (s.Tenant.deadline_class = Tenant.Interactive);
    (match b.Tenant.quota with
    | Some q ->
      Alcotest.(check int) "bronze burst" 25 q.Tenant.burst;
      Alcotest.(check (float 1e-9)) "bronze rate" 0.5 q.Tenant.rate_per_s
    | None -> Alcotest.fail "bronze quota missing")
  | Ok l -> Alcotest.failf "expected 3 tenants, got %d" (List.length l));
  (* round trip *)
  let spec = "gold:10:interactive,bronze:1:batch:25@0.5" in
  (match Tenant.parse spec with
  | Ok l ->
    let printed = String.concat "," (List.map Tenant.to_string l) in
    (match Tenant.parse printed with
    | Ok l' -> Alcotest.(check bool) "round-trips" true (l = l')
    | Error e -> Alcotest.failf "reparse: %s" e)
  | Error e -> Alcotest.failf "parse: %s" e);
  (* rejections *)
  List.iter
    (fun bad ->
      match Tenant.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "a:0"; "a:x"; "a:1:warp"; "a:1,a:2"; ":3" ];
  (* empty spec = no tenants *)
  match Tenant.parse "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty spec should parse to []"

let test_deadline_classes () =
  let t cls = Tenant.make ~deadline_class:cls "x" in
  let d cls policy = Tenant.deadline_s ~policy_deadline_s:policy (t cls) in
  Alcotest.(check (option (float 1e-9))) "interactive = policy"
    (Some 2.0) (d Tenant.Interactive (Some 2.0));
  Alcotest.(check (option (float 1e-9))) "standard = 2x policy"
    (Some 4.0) (d Tenant.Standard (Some 2.0));
  Alcotest.(check (option (float 1e-9))) "batch unbounded"
    None (d Tenant.Batch (Some 2.0));
  Alcotest.(check (option (float 1e-9))) "no policy deadline: ladder inert"
    None (d Tenant.Interactive None)

(* ---------------- quotas ---------------- *)

(* Token bucket against a fake clock: verdicts depend only on arrival
   times, so the shed set is exact and replayable. *)
let test_quota_deterministic () =
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" (Lazy.force general) with
  | Ok _ -> ()
  | Error e -> failwith e);
  let svc = Service.create ~caching:true registry in
  let now = ref 0.0 in
  let adm =
    Admission.create ~clock:(fun () -> !now)
      ~tenants:
        [ Tenant.make ~quota:{ Tenant.rate_per_s = 1.0; burst = 3 } "metered" ]
      svc
  in
  let shed = ref [] in
  let submit id =
    let req =
      { Service.id; user = "u"; tenant = "metered"; overlay = "general";
        payload = Service.Kernel (Kernels.find "fir"); tuned = false;
        trace = ""; deadline_s = None }
    in
    Admission.submit_k adm req ~k:(fun r ->
        match r.result with
        | Error Service.Quota_exceeded -> shed := id :: !shed
        | _ -> ())
  in
  (* burst of 5 at t=0: exactly the last two shed *)
  List.iter submit [ 0; 1; 2; 3; 4 ];
  (* two seconds later the bucket refilled two tokens: 7 admitted, 8 shed *)
  now := 2.0;
  List.iter submit [ 5; 6; 7; 8 ];
  Admission.drain adm;
  Service.shutdown svc;
  Alcotest.(check (list int)) "exact shed set" [ 3; 4; 7; 8 ]
    (List.sort compare !shed);
  let st = Admission.stats adm in
  Alcotest.(check int) "sheds counted" 4 st.Admission.quota_shed;
  Alcotest.(check int) "admissions counted" 5 st.Admission.admitted;
  Alcotest.(check int) "quota telemetry" 4
    (Telemetry.snapshot (Service.telemetry svc)).Telemetry.quota_shed

(* ---------------- weighted-fair admission ---------------- *)

(* Pure DRR order end to end: park a 3-tenant backlog, release it, and
   check achieved shares against weights on the completion order. *)
let test_admission_shares () =
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" (Lazy.force general) with
  | Ok _ -> ()
  | Error e -> failwith e);
  let svc = Service.create ~caching:true registry in
  let tenants =
    [ Tenant.make ~weight:6 "a"; Tenant.make ~weight:3 "b"; Tenant.make "c" ]
  in
  let adm = Admission.create ~tenants svc in
  let order = ref [] in
  let k (r : Service.response) =
    order := r.request.Service.tenant :: !order
  in
  Admission.hold adm;
  List.iter
    (fun (t : Tenant.t) ->
      List.iteri
        (fun i (k' : Overgen_workload.Ir.kernel) ->
          ignore k';
          Admission.submit_k adm
            { Service.id = (Hashtbl.hash t.Tenant.id * 100) + i; user = "u";
              tenant = t.Tenant.id; overlay = "general";
              payload = Service.Kernel (List.nth Kernels.all (i mod 4));
              tuned = false; trace = ""; deadline_s = None }
            ~k)
        (List.init 60 (fun _ -> List.hd Kernels.all)))
    tenants;
  Admission.release adm;
  Admission.drain adm;
  Service.shutdown svc;
  let weights = List.map (fun (t : Tenant.t) -> (t.Tenant.id, t.Tenant.weight)) tenants in
  let reports = Share.measure ~weights (List.rev !order) in
  Alcotest.(check int) "3 tenants measured" 3 (List.length reports);
  let err = Share.max_rel_err reports in
  if err > 0.10 then
    Alcotest.failf "share error %.1f%% exceeds 10%%" (100.0 *. err)

(* Quota sheds + WFQ reordering keep the one-response-per-request
   contract under seeded faults, and the same seed sheds the same ids. *)
let test_exactly_once_under_faults () =
  let run_once () =
    let registry = Registry.create () in
    (match Registry.register registry ~name:"general" (Lazy.force general) with
    | Ok _ -> ()
    | Error e -> failwith e);
    let svc =
      Service.create ~caching:true
        ~policy:{ Service.default_policy with retries = 1 }
        registry
    in
    let tenants =
      [
        Tenant.make ~weight:5 "a";
        Tenant.make ~weight:2 "b";
        Tenant.make ~quota:{ Tenant.rate_per_s = 0.0; burst = 10 } "c";
      ]
    in
    let adm = Admission.create ~clock:(fun () -> 0.0) ~tenants svc in
    let answered = Hashtbl.create 64 in
    let shed = ref [] in
    let m = Mutex.create () in
    let reqs =
      List.concat_map
        (fun (idx, tenant) ->
          List.init 40 (fun i ->
              { Service.id = (idx * 1000) + i; user = tenant; tenant;
                overlay = "general";
                payload = Service.Kernel (List.nth Kernels.all ((idx + i) mod 6));
                tuned = false; trace = ""; deadline_s = None }))
        [ (0, "a"); (1, "b"); (2, "c") ]
    in
    let cfg =
      {
        Fault.seed = 33;
        rate = 0.2;
        transient_fraction = 0.5;
        points = [ Fault.Points.cache_store; Fault.Points.service_process ];
      }
    in
    Fault.with_faults cfg (fun () ->
        Admission.hold adm;
        List.iter
          (fun r ->
            Admission.submit_k adm r ~k:(fun (resp : Service.response) ->
                Mutex.lock m;
                Hashtbl.replace answered resp.request.Service.id
                  (1 + Option.value ~default:0
                         (Hashtbl.find_opt answered resp.request.Service.id));
                (match resp.result with
                | Error Service.Quota_exceeded ->
                  shed := resp.request.Service.id :: !shed
                | _ -> ());
                Mutex.unlock m))
          reqs;
        Admission.release adm;
        Admission.drain adm);
    Service.shutdown svc;
    List.iter
      (fun (r : Service.request) ->
        match Hashtbl.find_opt answered r.Service.id with
        | Some 1 -> ()
        | Some n -> Alcotest.failf "request %d answered %d times" r.Service.id n
        | None -> Alcotest.failf "request %d never answered" r.Service.id)
      reqs;
    List.sort compare !shed
  in
  let first = run_once () in
  let second = run_once () in
  Alcotest.(check int) "30 deterministic sheds" 30 (List.length first);
  Alcotest.(check (list int)) "same seed, same shed set" first second

(* ---------------- retire: no orphaned durable records ---------------- *)

(* store gc of a retired overlay must not strand schedule-cache records
   keyed by its fingerprint: retire, then restart from the same store and
   verify — the registry stays retired, the file verifies clean, and no
   cache record under the retired fingerprint survives. *)
let test_retire_restart_verify () =
  let path = Filename.temp_file "fleet_retire" ".store" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let store = Result.get_ok (Store.open_ ~path ()) in
  let registry = Registry.create ~store () in
  (match Registry.register registry ~name:"general" (Lazy.force general) with
  | Ok _ -> ()
  | Error e -> failwith e);
  let fp =
    match Registry.register registry ~name:"decoy" (Lazy.force decoy) with
    | Ok e -> e.Registry.fingerprint
    | Error e -> failwith e
  in
  let cache = Cache.create ~store () in
  let svc = Service.create ~caching:true ~cache registry in
  let req id overlay kernel =
    { Service.id; user = "u"; tenant = ""; overlay;
      payload = Service.Kernel (Kernels.find kernel); tuned = false;
      trace = ""; deadline_s = None }
  in
  let responses =
    Service.run svc
      [ req 0 "decoy" "fir"; req 1 "general" "fir"; req 2 "general" "mm" ]
  in
  Alcotest.(check int) "traffic served" 3 (List.length responses);
  List.iter
    (fun (r : Service.response) ->
      match r.result with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "compile failed: %s" (Service.error_to_string e))
    responses;
  let prefix = Printf.sprintf "%d:%s" (String.length fp) fp in
  let has_decoy_record s =
    List.exists
      (fun (k, _) ->
        String.length k >= String.length prefix
        && String.sub k 0 (String.length prefix) = prefix)
      (Store.bindings s ~ns:"schedule-cache")
  in
  Alcotest.(check bool) "decoy schedule persisted" true (has_decoy_record store);
  let manager = Manager.create ~cache ~store ~model:(Lazy.force model) registry in
  (match Manager.retire manager "decoy" with
  | Ok purged -> Alcotest.(check bool) "purged at least one" true (purged >= 1)
  | Error e -> Alcotest.failf "retire: %s" e);
  Service.shutdown svc;
  Store.close store;
  (* restart: the file verifies, the registry stays retired, and no
     cache record under the retired fingerprint survives the gc *)
  (match Store.verify ~path with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "store verify after retire: %s" e.Store.reason);
  let store2 = Result.get_ok (Store.open_ ~path ()) in
  let registry2 = Registry.create ~store:store2 () in
  Alcotest.(check bool) "decoy stays retired" true
    (Registry.find registry2 "decoy" = None);
  Alcotest.(check bool) "general survives" true
    (Registry.find registry2 "general" <> None);
  Alcotest.(check bool) "no orphaned cache records" false
    (has_decoy_record store2);
  let cache2 = Cache.create ~store:store2 () in
  Alcotest.(check bool) "warm start still works" true
    (Cache.warm_loaded cache2 >= 1);
  Store.close store2

(* ---------------- per-tenant telemetry ---------------- *)

(* Tenant-labeled series coexist with the unlabeled aggregates in one
   Prometheus dump: HELP/TYPE stated once per family, every series
   carrying its tenant label, and untenanted traffic producing no tenant
   series at all. *)
let test_tenant_prometheus () =
  let contains ~needle hay =
    let n = String.length needle and l = String.length hay in
    let rec scan i = i + n <= l && (String.sub hay i n = needle || scan (i + 1)) in
    scan 0
  in
  let count_occurrences ~needle hay =
    let n = String.length needle in
    let rec scan i acc =
      if i + n > String.length hay then acc
      else if String.sub hay i n = needle then scan (i + 1) (acc + 1)
      else scan (i + 1) acc
    in
    scan 0 0
  in
  let t = Telemetry.create () in
  Telemetry.record ~tenant:"acme" t Telemetry.Uncached ~service_s:0.001;
  Telemetry.record ~tenant:"acme" t Telemetry.Hit ~service_s:0.0001;
  Telemetry.record ~tenant:"zeta" t Telemetry.Miss ~service_s:0.002;
  Telemetry.record_quota ~tenant:"zeta" t;
  Telemetry.record t Telemetry.Uncached ~service_s:0.001;
  let dump = Overgen_obs.Metrics.render_prometheus (Telemetry.registry t) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle dump))
    [
      "overgen_service_requests_total{outcome=\"hit\",tenant=\"acme\"} 1";
      "overgen_service_requests_total{outcome=\"miss\",tenant=\"zeta\"} 1";
      "overgen_service_quota_shed_total{tenant=\"zeta\"} 1";
      "overgen_service_latency_seconds_bucket{tenant=\"acme\"";
    ];
  (* one HELP line per family even with labeled + unlabeled series *)
  Alcotest.(check int) "HELP stated once for requests family" 1
    (count_occurrences ~needle:"# HELP overgen_service_requests_total" dump);
  (* the unlabeled aggregates still count everything *)
  Alcotest.(check int) "aggregate counts all tenants" 4
    (Telemetry.snapshot t).Telemetry.requests;
  (* untenanted traffic creates no tenant series *)
  let t2 = Telemetry.create () in
  Telemetry.record t2 Telemetry.Uncached ~service_s:0.001;
  let dump2 = Overgen_obs.Metrics.render_prometheus (Telemetry.registry t2) in
  Alcotest.(check bool) "no tenant label without tenants" false
    (contains ~needle:"tenant=" dump2)

(* ---------------- manager: scan + promote ---------------- *)

let test_scan_and_promote () =
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" (Lazy.force general) with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match Registry.register registry ~name:"cold" (Lazy.force decoy) with
  | Ok _ -> ()
  | Error e -> failwith e);
  let now = ref 0.0 in
  let manager =
    Manager.create
      ~config:
        {
          Manager.default_config with
          retire_idle_s = 100.0;
          protected = [ "general" ];
          promote_min_requests = 5;
          dse_iterations = 40;
          dse_top_kernels = 2;
        }
      ~clock:(fun () -> !now)
      ~model:(Lazy.force model) registry
  in
  (* protected names refuse to retire even when idle *)
  (match Manager.retire manager "general" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "protected overlay retired");
  (* nothing is idle yet *)
  Alcotest.(check (list string)) "no retire before threshold" []
    (Manager.scan manager);
  now := 200.0;
  Alcotest.(check (list string)) "cold overlay retired by scan" [ "cold" ]
    (Manager.scan manager);
  Alcotest.(check bool) "unregistered" true
    (Registry.find registry "cold" = None);
  (* promote after enough observed misses *)
  let mk id kernel hit =
    {
      Service.request =
        { Service.id = id; user = "u"; tenant = "t"; overlay = "general";
          payload = Service.Kernel (Kernels.find kernel); tuned = false;
          trace = ""; deadline_s = None };
      result = Ok [];
      cache_hit = hit;
      service_s = 0.001;
    }
  in
  List.iteri
    (fun i k -> Manager.observe manager (mk i k (i mod 2 = 0)))
    [ "fir"; "fir"; "mm"; "mm"; "fir"; "fft" ];
  (match Manager.maybe_promote manager with
  | Some entry ->
    Alcotest.(check bool) "fleet name" true
      (String.length entry.Registry.name >= 6
      && String.sub entry.Registry.name 0 6 = "fleet-");
    Alcotest.(check bool) "registered" true
      (Registry.find registry entry.Registry.name <> None)
  | None -> Alcotest.fail "promote did not fire");
  Alcotest.(check int) "promote counted" 1 (Manager.promotes manager);
  (* the observation window reset: no immediate second promote *)
  Alcotest.(check bool) "window reset" true
    (Manager.maybe_promote manager = None)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_work_conserving;
    QCheck_alcotest.to_alcotest prop_share_tracks_weight;
    QCheck_alcotest.to_alcotest prop_no_starvation;
    Alcotest.test_case "tenant specs parse + round-trip" `Quick
      test_tenant_parse;
    Alcotest.test_case "deadline class ladder" `Quick test_deadline_classes;
    Alcotest.test_case "quota sheds are deterministic" `Slow
      test_quota_deterministic;
    Alcotest.test_case "weighted shares on the completion order" `Slow
      test_admission_shares;
    Alcotest.test_case "exactly one response under faults" `Slow
      test_exactly_once_under_faults;
    Alcotest.test_case "tenant-labeled prometheus dump" `Quick
      test_tenant_prometheus;
    Alcotest.test_case "retire, restart, verify: no orphans" `Slow
      test_retire_restart_verify;
    Alcotest.test_case "manager scan + promote" `Slow test_scan_and_promote;
  ]
