open Overgen_adg

let mk_pe () = Comp.Pe (Comp.default_pe (Op.Cap.of_ops [ Op.Add; Op.Mul ] [ Dtype.I64 ]))
let mk_sw () = Comp.Switch { width_bits = 64 }
let mk_ip () = Comp.In_port (Comp.default_port ~width_bytes:8)
let mk_op () = Comp.Out_port (Comp.default_port ~width_bytes:8)
let mk_dma () = Comp.Engine (Comp.default_engine Comp.Dma)

let test_digraph_basic () =
  let g = Digraph.empty in
  let g = Digraph.add_node g 0 "a" in
  let g = Digraph.add_node g 1 "b" in
  let g = Digraph.add_edge g 0 1 in
  Alcotest.(check (list int)) "succ" [ 1 ] (Digraph.succs g 0);
  Alcotest.(check (list int)) "pred" [ 0 ] (Digraph.preds g 1);
  Alcotest.(check bool) "mem_edge" true (Digraph.mem_edge g 0 1);
  let g = Digraph.remove_edge g 0 1 in
  Alcotest.(check bool) "removed" false (Digraph.mem_edge g 0 1)

let test_digraph_remove_node_cleans_edges () =
  let g = Digraph.empty in
  let g = List.fold_left (fun g i -> Digraph.add_node g i i) g [ 0; 1; 2 ] in
  let g = Digraph.add_edge (Digraph.add_edge g 0 1) 1 2 in
  let g = Digraph.remove_node g 1 in
  Alcotest.(check (list int)) "no succ" [] (Digraph.succs g 0);
  Alcotest.(check (list int)) "no pred" [] (Digraph.preds g 2);
  Alcotest.(check int) "two nodes left" 2 (Digraph.node_count g)

let test_digraph_rejects_self_loop () =
  let g = Digraph.add_node Digraph.empty 0 "x" in
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.add_edge: self loop")
    (fun () -> ignore (Digraph.add_edge g 0 0))

let test_digraph_topo () =
  let g = List.fold_left (fun g i -> Digraph.add_node g i i) Digraph.empty [ 0; 1; 2; 3 ] in
  let g = Digraph.add_edge g 0 1 in
  let g = Digraph.add_edge g 1 2 in
  let g = Digraph.add_edge g 0 3 in
  (match Digraph.topo_sort g with
  | Some order ->
    let pos x = Option.get (List.find_index (Int.equal x) order) in
    Alcotest.(check bool) "0 before 1" true (pos 0 < pos 1);
    Alcotest.(check bool) "1 before 2" true (pos 1 < pos 2)
  | None -> Alcotest.fail "expected topo order");
  let cyclic = Digraph.add_edge g 2 0 in
  Alcotest.(check bool) "cycle detected" true (Digraph.topo_sort cyclic = None)

let test_digraph_shortest_path () =
  let g = List.fold_left (fun g i -> Digraph.add_node g i i) Digraph.empty [ 0; 1; 2; 3 ] in
  let g = Digraph.add_edge g 0 1 in
  let g = Digraph.add_edge g 1 3 in
  let g = Digraph.add_edge g 0 2 in
  let g = Digraph.add_edge g 2 3 in
  (match Digraph.shortest_path g ~src:0 ~dst:3 ~ok:(fun _ -> true) with
  | Some p -> Alcotest.(check int) "length 3" 3 (List.length p)
  | None -> Alcotest.fail "path expected");
  (* Block both intermediates: no path. *)
  Alcotest.(check bool) "blocked" true
    (Digraph.shortest_path g ~src:0 ~dst:3 ~ok:(fun i -> i <> 1 && i <> 2) = None)

let test_adg_edge_legality () =
  let adg = Adg.empty in
  let adg, pe = Adg.add adg (mk_pe ()) in
  let adg, dma = Adg.add adg (mk_dma ()) in
  Alcotest.check_raises "engine->pe illegal"
    (Invalid_argument "Adg.add_edge: illegal dma->pe") (fun () ->
      ignore (Adg.add_edge adg dma pe))

let test_adg_route_through_switches_only () =
  let adg = Adg.empty in
  let adg, ip = Adg.add adg (mk_ip ()) in
  let adg, sw1 = Adg.add adg (mk_sw ()) in
  let adg, pe1 = Adg.add adg (mk_pe ()) in
  let adg, pe2 = Adg.add adg (mk_pe ()) in
  let adg = Adg.add_edge adg ip sw1 in
  let adg = Adg.add_edge adg sw1 pe1 in
  let adg = Adg.add_edge adg sw1 pe2 in
  (match Adg.route adg ~src:ip ~dst:pe1 with
  | Some p -> Alcotest.(check (list int)) "route" [ ip; sw1; pe1 ] p
  | None -> Alcotest.fail "route expected");
  (* A route must not pass through a PE. *)
  let adg2 = Adg.add_edge adg pe1 pe2 in
  ignore adg2;
  Alcotest.(check bool) "no pe-through route" true
    (Adg.route adg ~src:pe1 ~dst:pe2 = None)

let test_mesh_validates () =
  let caps = Op.Cap.of_ops [ Op.Add; Op.Mul ] [ Dtype.I64 ] in
  let adg =
    Builder.mesh ~rows:2 ~cols:3 ~caps ~sw_width_bits:64 ~width_bits:64
      ~in_port_widths:[ 8; 8 ] ~out_port_widths:[ 8 ]
      ~engines:[ Comp.default_engine Comp.Dma ]
  in
  (match Adg.validate adg with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "mesh invalid: %s" (String.concat "; " errs));
  Alcotest.(check int) "pe count" 6 (List.length (Adg.pes adg));
  Alcotest.(check int) "switch count" 12 (List.length (Adg.switches adg))

let test_seed_validates () =
  let caps = Op.Cap.of_ops [ Op.Add ] [ Dtype.I64 ] in
  let adg = Builder.seed ~caps ~width_bits:64 in
  match Adg.validate adg with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "seed invalid: %s" (String.concat "; " errs)

let test_general_overlay () =
  let sys = Builder.general_overlay () in
  (match Adg.validate sys.Sys_adg.adg with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "general invalid: %s" (String.concat "; " errs));
  let s = Adg.stats sys.Sys_adg.adg in
  Alcotest.(check int) "24 PEs" 24 s.n_pe;
  Alcotest.(check int) "35 switches" 35 s.n_switch;
  Alcotest.(check int) "int mul capable PEs" 24 s.int_mul;
  Alcotest.(check int) "flt sqrt capable PEs" 24 s.flt_sqrt;
  Alcotest.(check int) "in port bw" 224 s.in_port_bw;
  Alcotest.(check int) "out port bw" 160 s.out_port_bw;
  Alcotest.(check int) "4 tiles" 4 sys.Sys_adg.system.System.tiles

let test_stats_engine_counts () =
  let sys = Builder.general_overlay () in
  let s = Adg.stats sys.Sys_adg.adg in
  Alcotest.(check int) "one gen" 1 s.n_gen;
  Alcotest.(check int) "one rec" 1 s.n_rec;
  Alcotest.(check int) "one reg" 1 s.n_reg;
  Alcotest.(check (list int)) "spad capacity" [ 32 * 1024 ] s.spad_caps

let test_config_bits_positive_and_monotone () =
  let caps = Op.Cap.of_ops [ Op.Add ] [ Dtype.I64 ] in
  let small = Builder.seed ~caps ~width_bits:64 in
  let big = (Builder.general_overlay ()).Sys_adg.adg in
  let sys_small = Sys_adg.make small System.default in
  let sys_big = Sys_adg.make big System.default in
  let cb_small = Sys_adg.config_bits sys_small in
  let cb_big = Sys_adg.config_bits sys_big in
  Alcotest.(check bool) "positive" true (cb_small > 0);
  Alcotest.(check bool) "bigger design, bigger bitstream" true (cb_big > cb_small);
  Alcotest.(check bool) "reconfig cycles positive" true
    (Sys_adg.reconfigure_cycles sys_small > 0)

let test_remove_switch_invalidates () =
  let caps = Op.Cap.of_ops [ Op.Add ] [ Dtype.I64 ] in
  let adg = Builder.seed ~caps ~width_bits:64 in
  (* Removing every switch must break validation (PEs become unreachable). *)
  let no_sw = List.fold_left Adg.remove_node adg (Adg.switches adg) in
  Alcotest.(check bool) "invalid after removing switches" true
    (match Adg.validate no_sw with Ok () -> false | Error _ -> true)

let test_system_candidates () =
  let cands = System.candidates () in
  Alcotest.(check bool) "many candidates" true (List.length cands > 100);
  Alcotest.(check bool) "all positive tiles" true
    (List.for_all (fun (s : System.t) -> s.tiles >= 1) cands);
  let both = System.candidates ~topologies:[ System.Crossbar; System.Ring ] () in
  Alcotest.(check int) "two topologies double the space"
    (2 * List.length cands) (List.length both)

let test_noc_topologies () =
  let base = System.default in
  let xbar = { base with System.tiles = 8; noc_bytes = 32 } in
  let ring = { xbar with System.noc_topology = System.Ring } in
  Alcotest.(check int) "crossbar aggregate" (8 * 32) (System.shared_bandwidth xbar);
  Alcotest.(check bool) "ring is bisection-limited" true
    (System.shared_bandwidth ring < System.shared_bandwidth xbar)

let test_avg_radix () =
  let caps = Op.Cap.of_ops [ Op.Add ] [ Dtype.I64 ] in
  let adg =
    Builder.mesh ~rows:2 ~cols:2 ~caps ~sw_width_bits:64 ~width_bits:64 ~in_port_widths:[ 8 ]
      ~out_port_widths:[ 8 ]
      ~engines:[ Comp.default_engine Comp.Dma ]
  in
  Alcotest.(check bool) "radix positive" true (Adg.avg_switch_radix adg > 1.0)

(* capability sets are balanced trees, so polymorphic equality on nodes is
   too strict; the serialized text is canonical (sorted caps, ordered ids) *)
let same_design (a : Sys_adg.t) (b : Sys_adg.t) =
  Serial.to_string a = Serial.to_string b

let test_serial_roundtrip_general () =
  let sys = Builder.general_overlay () in
  match Serial.of_string (Serial.to_string sys) with
  | Ok back -> Alcotest.(check bool) "roundtrip" true (same_design sys back)
  | Error e -> Alcotest.failf "parse error: %s" e

let test_serial_save_load () =
  let sys = Builder.general_overlay () in
  let path = Filename.temp_file "overgen" ".adg" in
  Serial.save sys ~path;
  (match Serial.load ~path with
  | Ok back -> Alcotest.(check bool) "file roundtrip" true (same_design sys back)
  | Error e -> Alcotest.failf "load error: %s" e);
  Sys.remove path

let test_serial_rejects_garbage () =
  (match Serial.of_string "hello" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject a missing header");
  match Serial.of_string "overgen-adg v1\nnode x pe width=64" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject a bad node line"

let prop_serial_roundtrip_after_mutation =
  QCheck.Test.make ~name:"serialization round-trips mutated designs" ~count:10
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Overgen_util.Rng.create seed in
      let sys = Builder.general_overlay () in
      let pool = Op.Cap.of_ops [ Op.Add; Op.Mul ] [ Dtype.F64; Dtype.I16 ] in
      let usage = Overgen_dse.Mutate.usage_of [] in
      let adg = ref sys.adg in
      for _ = 1 to 12 do
        let adg', _ =
          Overgen_dse.Mutate.propose rng ~preserve:false ~caps_pool:pool !adg usage
        in
        adg := adg'
      done;
      let mutated = Sys_adg.with_adg sys !adg in
      match Serial.of_string (Serial.to_string mutated) with
      | Ok back -> same_design mutated back
      | Error _ -> false)

let prop_mesh_always_valid =
  QCheck.Test.make ~name:"meshes of any size validate" ~count:30
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (rows, cols) ->
      let caps = Op.Cap.of_ops [ Op.Add; Op.Mul ] [ Dtype.I64 ] in
      let adg =
        Builder.mesh ~rows ~cols ~caps ~sw_width_bits:64 ~width_bits:64
          ~in_port_widths:[ 8; 8 ]
          ~out_port_widths:[ 8 ]
          ~engines:[ Comp.default_engine Comp.Dma; Comp.default_engine Comp.Spad ]
      in
      match Adg.validate adg with Ok () -> true | Error _ -> false)

let prop_digraph_add_remove_inverse =
  QCheck.Test.make ~name:"add then remove node restores edge count" ~count:100
    QCheck.(int_range 2 20)
    (fun n ->
      let g =
        List.fold_left (fun g i -> Digraph.add_node g i i) Digraph.empty
          (List.init n Fun.id)
      in
      let g = Digraph.add_edge g 0 1 in
      let before = Digraph.edge_count g in
      let g' = Digraph.remove_node (Digraph.add_node g 999 999) 999 in
      Digraph.edge_count g' = before && Digraph.node_count g' = n)

(* Golden digest of the reference design.  Serial.fingerprint is a durable
   content address: the schedule cache and the overlay registry persist
   records keyed by it, so if this digest moves, existing store files
   silently stop matching.  An intentional serialization change must bump
   the codec schema AND update this constant. *)
let general_overlay_golden_fingerprint = "86c67ef0e52596aa805d8218208fd11f"

let test_fingerprint_golden () =
  Alcotest.(check string)
    "fingerprint of the reference general overlay is stable (a mismatch \
     means the on-disk serialization format changed: bump the store codec \
     schema and update the golden digest)"
    general_overlay_golden_fingerprint
    (Serial.fingerprint (Builder.general_overlay ()))

let tests =
  [
    Alcotest.test_case "digraph basic" `Quick test_digraph_basic;
    Alcotest.test_case "digraph remove node" `Quick test_digraph_remove_node_cleans_edges;
    Alcotest.test_case "digraph self loop" `Quick test_digraph_rejects_self_loop;
    Alcotest.test_case "digraph topo" `Quick test_digraph_topo;
    Alcotest.test_case "digraph shortest path" `Quick test_digraph_shortest_path;
    Alcotest.test_case "adg edge legality" `Quick test_adg_edge_legality;
    Alcotest.test_case "adg routing" `Quick test_adg_route_through_switches_only;
    Alcotest.test_case "mesh validates" `Quick test_mesh_validates;
    Alcotest.test_case "seed validates" `Quick test_seed_validates;
    Alcotest.test_case "general overlay stats" `Quick test_general_overlay;
    Alcotest.test_case "engine counts" `Quick test_stats_engine_counts;
    Alcotest.test_case "config bits" `Quick test_config_bits_positive_and_monotone;
    Alcotest.test_case "remove switches invalid" `Quick test_remove_switch_invalidates;
    Alcotest.test_case "system candidates" `Quick test_system_candidates;
    Alcotest.test_case "noc topologies" `Quick test_noc_topologies;
    Alcotest.test_case "avg radix" `Quick test_avg_radix;
    Alcotest.test_case "serial roundtrip" `Quick test_serial_roundtrip_general;
    Alcotest.test_case "serial save/load" `Quick test_serial_save_load;
    Alcotest.test_case "serial rejects garbage" `Quick test_serial_rejects_garbage;
    Alcotest.test_case "fingerprint golden" `Quick test_fingerprint_golden;
    QCheck_alcotest.to_alcotest prop_serial_roundtrip_after_mutation;
    QCheck_alcotest.to_alcotest prop_mesh_always_valid;
    QCheck_alcotest.to_alcotest prop_digraph_add_remove_inverse;
  ]
