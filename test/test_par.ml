(* The generic domain worker pool: queueing, backpressure, barriers and
   failure propagation — in both execution modes. *)

module Pool = Overgen_par.Pool

let test_deterministic_fifo () =
  let p = Pool.create Pool.Deterministic in
  let order = ref [] in
  List.iter
    (fun i ->
      match Pool.submit p (fun () -> order := i :: !order) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "submit rejected below capacity")
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "jobs wait for drain" 5 (Pool.pending p);
  Alcotest.(check (list int)) "nothing ran yet" [] !order;
  Pool.drain p;
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4; 5 ] (List.rev !order);
  Alcotest.(check int) "queue empty" 0 (Pool.pending p);
  Pool.shutdown p

let test_deterministic_nested_submit () =
  (* a job may enqueue another job; one drain completes both *)
  let p = Pool.create Pool.Deterministic in
  let hit = ref false in
  (match
     Pool.submit p (fun () ->
         match Pool.submit p (fun () -> hit := true) with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "nested submit rejected")
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "outer submit rejected");
  Pool.drain p;
  Alcotest.(check bool) "nested job ran" true !hit;
  Pool.shutdown p

let test_backpressure () =
  let p = Pool.create ~queue_capacity:2 Pool.Deterministic in
  let ok () = Pool.submit p (fun () -> ()) in
  Alcotest.(check bool) "first admitted" true (ok () = Ok ());
  Alcotest.(check bool) "second admitted" true (ok () = Ok ());
  Alcotest.(check bool) "third rejected" true (ok () = Error Pool.Saturated);
  Pool.drain p;
  Alcotest.(check bool) "admits again after drain" true (ok () = Ok ());
  Pool.drain p;
  Pool.shutdown p

let test_stopped_after_shutdown () =
  let p = Pool.create Pool.Deterministic in
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  match Pool.submit p (fun () -> ()) with
  | Error Pool.Stopped -> ()
  | _ -> Alcotest.fail "expected Stopped after shutdown"

let test_map_orders = function
  | mode ->
    let p = Pool.create mode in
    let input = List.init 100 (fun i -> i) in
    let out = Pool.map p (fun i -> i * i) input in
    Alcotest.(check (list int)) "map preserves input order"
      (List.map (fun i -> i * i) input)
      out;
    Pool.shutdown p

exception Boom

let test_exception_propagates () =
  List.iter
    (fun mode ->
      let p = Pool.create mode in
      (match Pool.submit p (fun () -> raise Boom) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "submit rejected");
      (try
         Pool.drain p;
         Alcotest.fail "drain should re-raise the job's exception"
       with Boom -> ());
      (* the pool survives a failed job *)
      let out = Pool.map p (fun i -> i + 1) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "pool usable after failure" [ 2; 3; 4 ] out;
      Pool.shutdown p)
    [ Pool.Deterministic; Pool.Domains 2 ]

exception BoomN of int

(* Several jobs fail in one batch: map_result must attribute each failure
   to its own slot, map must raise the first error in *input* order, and
   drain_all must hand back every recorded failure, oldest first. *)
let test_multi_failure_results () =
  let work i = if i = 1 || i = 4 || i = 6 then raise (BoomN i) else 10 * i in
  List.iter
    (fun mode ->
      let p = Pool.create mode in
      let out = Pool.map_result p work [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
      let show = function
        | Ok v -> string_of_int v
        | Error (BoomN i) -> Printf.sprintf "boom%d" i
        | Error e -> Printexc.to_string e
      in
      Alcotest.(check (list string))
        "per-slot results"
        [ "0"; "boom1"; "20"; "30"; "boom4"; "50"; "boom6"; "70" ]
        (List.map show out);
      (* map raises the first failure in input order, both modes. *)
      (match Pool.map p work [ 0; 1; 2; 3; 4; 5; 6; 7 ] with
      | _ -> Alcotest.fail "map should raise"
      | exception BoomN 1 -> ()
      | exception e ->
        Alcotest.failf "map raised %s, wanted BoomN 1" (Printexc.to_string e));
      (* map failures never leak into the pool-level failure list *)
      Pool.drain p;
      (* submit-level failures are all retained, oldest first *)
      List.iter
        (fun i ->
          match Pool.submit p (fun () -> raise (BoomN i)) with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "submit rejected")
        [ 1; 4; 6 ];
      let failed = Pool.drain_all p in
      Alcotest.(check (list string))
        "drain_all keeps every failure, oldest first"
        [ "boom1"; "boom4"; "boom6" ]
        (List.map (fun e -> show (Error e)) failed);
      Alcotest.(check int) "failures consumed" 0
        (List.length (Pool.drain_all p));
      Pool.shutdown p)
    [ Pool.Deterministic; Pool.Domains 4 ]

let test_domains_match_deterministic () =
  let work i = (i * 37) mod 101 in
  let input = List.init 500 (fun i -> i) in
  let run mode =
    let p = Pool.create mode in
    let out = Pool.map p work input in
    Pool.shutdown p;
    out
  in
  Alcotest.(check (list int)) "Domains 3 = Deterministic"
    (run Pool.Deterministic)
    (run (Pool.Domains 3))

let test_workers_width () =
  let p = Pool.create Pool.Deterministic in
  Alcotest.(check int) "deterministic width" 1 (Pool.workers p);
  Pool.shutdown p;
  let p = Pool.create (Pool.Domains 3) in
  Alcotest.(check int) "domains width" 3 (Pool.workers p);
  Pool.shutdown p;
  Alcotest.check_raises "Domains 0 rejected"
    (Invalid_argument "Pool.create: Domains n with n < 1") (fun () ->
      ignore (Pool.create (Pool.Domains 0)));
  Alcotest.check_raises "queue_capacity 0 rejected"
    (Invalid_argument "Pool.create: queue_capacity < 1") (fun () ->
      ignore (Pool.create ~queue_capacity:0 Pool.Deterministic))

let tests =
  [
    Alcotest.test_case "deterministic FIFO drain" `Quick test_deterministic_fifo;
    Alcotest.test_case "nested submit" `Quick test_deterministic_nested_submit;
    Alcotest.test_case "backpressure" `Quick test_backpressure;
    Alcotest.test_case "stopped after shutdown" `Quick test_stopped_after_shutdown;
    Alcotest.test_case "map order (deterministic)" `Quick (fun () ->
        test_map_orders Pool.Deterministic);
    Alcotest.test_case "map order (domains)" `Quick (fun () ->
        test_map_orders (Pool.Domains 4));
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "multi-failure results" `Quick test_multi_failure_results;
    Alcotest.test_case "domains match deterministic" `Quick
      test_domains_match_deterministic;
    Alcotest.test_case "workers + validation" `Quick test_workers_width;
  ]
