/* mm (dsp, 32^3) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(mm) suite(dsp) dtype(f64) lanes(1) size(32^3)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static double og_a[1024];
static double og_b[1024];
static double og_c[1024];

void mm_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(matmul) hls(clean)
  for (int i = 0; i < 32; ++i) {
    for (int k = 0; k < 32; ++k) {
      for (int j = 0; j < 32; ++j) {
        og_c[32*i + j] += (og_a[32*i + k] * og_b[j + 32*k]);
      }
    }
  }
}
}

int main(void) {
  mm_kernel();
  return 0;
}
