/* acc-sqr (vision, 128^2x4) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(acc-sqr) suite(vision) dtype(i16) lanes(1) size(128^2x4)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static int16_t og_accb[65536];
static int16_t og_ain[65536];

void acc_sqr_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(accsq) hls(clean)
  for (int i = 0; i < 65536; ++i) {
    og_accb[i] += (og_ain[i] * og_ain[i]);
  }
}
}

int main(void) {
  acc_sqr_kernel();
  return 0;
}
