/* crs (machsuite, 494x4) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(crs) suite(machsuite) dtype(f64) lanes(1) size(494x4)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static double og_va[1978];
static int32_t og_cidx[1978];
static double og_x[494];
static double og_y[494];

void crs_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(spmv) hls(variable_trip 4 2)
  for (int row = 0; row < 494; ++row) {
    for (int nz = 0; nz < OG_TRI(row, 8); ++nz) {
      og_y[row] += (og_va[nz + 4*row] * og_x[og_cidx[nz + 4*row]]);
    }
  }
}
}

int main(void) {
  crs_kernel();
  return 0;
}
