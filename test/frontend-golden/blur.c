/* blur (vision, 128^2x4) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(blur) suite(vision) dtype(i16) lanes(1) size(128^2x4) window_reuse
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static int16_t og_img[16384];
static int16_t og_out[15876];

void blur_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(box3x3) hls(strided 6)
  for (int t = 0; t < 4; ++t) {
    for (int r = 0; r < 126; ++r) {
      for (int c = 0; c < 126; ++c) {
        og_out[c + 126*r] = (((((((((og_img[c + 128*r] + og_img[c + 128*r + 1]) + og_img[c + 128*r + 2]) + og_img[c + 128*r + 128]) + og_img[c + 128*r + 129]) + og_img[c + 128*r + 130]) + og_img[c + 128*r + 256]) + og_img[c + 128*r + 257]) + og_img[c + 128*r + 258]) / 9);
      }
    }
  }
}
}

#pragma dsa tune desc(manually unroll columns to reuse overlapped window loads)
void blur_kernel_tuned(void) {
#pragma dsa config
{
  #pragma dsa decouple region(box3x3_unroll2) hls(strided 6)
  for (int t = 0; t < 4; ++t) {
    for (int r = 0; r < 126; ++r) {
      for (int c = 0; c < 63; ++c) {
        og_out[2*c + 126*r] = (((((((((og_img[2*c + 128*r] + og_img[2*c + 128*r + 1]) + og_img[2*c + 128*r + 2]) + og_img[2*c + 128*r + 128]) + og_img[2*c + 128*r + 129]) + og_img[2*c + 128*r + 130]) + og_img[2*c + 128*r + 256]) + og_img[2*c + 128*r + 257]) + og_img[2*c + 128*r + 258]) / 9);
        og_out[2*c + 126*r + 1] = (((((((((og_img[2*c + 128*r + 1] + og_img[2*c + 128*r + 2]) + og_img[2*c + 128*r + 3]) + og_img[2*c + 128*r + 129]) + og_img[2*c + 128*r + 130]) + og_img[2*c + 128*r + 131]) + og_img[2*c + 128*r + 257]) + og_img[2*c + 128*r + 258]) + og_img[2*c + 128*r + 259]) / 9);
      }
    }
  }
}
}

int main(void) {
  blur_kernel();
  return 0;
}
