/* fir (dsp, 2^10x199) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(fir) suite(dsp) dtype(f64) lanes(1) size(2^10x199)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static double og_a[1222];
static double og_b[199];
static double og_c[1024];

void fir_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(taps) hls(clean)
  for (int io = 0; io < 16; ++io) {
    for (int j = 0; j < 199; ++j) {
      for (int ii = 0; ii < 64; ++ii) {
        og_c[ii + 64*io] += (og_a[ii + 64*io + j] * og_b[j]);
      }
    }
  }
}
}

int main(void) {
  fir_kernel();
  return 0;
}
