/* vecmax (vision, 128^2x4) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(vecmax) suite(vision) dtype(i16) lanes(1) size(128^2x4)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static int16_t og_xa[65536];
static int16_t og_xb[65536];
static int16_t og_xm[65536];

void vecmax_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(vmax) hls(clean)
  for (int i = 0; i < 65536; ++i) {
    og_xm[i] = MAX(og_xa[i], og_xb[i]);
  }
}
}

int main(void) {
  vecmax_kernel();
  return 0;
}
