/* stencil-3d (machsuite, 34^3x8) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(stencil-3d) suite(machsuite) dtype(i64) lanes(1) size(34^3x8)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static int64_t og_sin[39304];
static int64_t og_sout[39304];
static int64_t og_c0 = 1;
static int64_t og_c1 = 1;

void stencil_3d_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(sweep) hls(strided 6)
  for (int t = 0; t < 8; ++t) {
    for (int i = 0; i < 32; ++i) {
      for (int j = 0; j < 32; ++j) {
        for (int k = 0; k < 32; ++k) {
          og_sout[1156*i + 34*j + k + 1191] = ((og_c0 * og_sin[1156*i + 34*j + k + 1191]) + (og_c1 * (((((og_sin[1156*i + 34*j + k + 1190] + og_sin[1156*i + 34*j + k + 1192]) + og_sin[1156*i + 34*j + k + 1157]) + og_sin[1156*i + 34*j + k + 2347]) + og_sin[1156*i + 34*j + k + 35]) + og_sin[1156*i + 34*j + k + 1225])));
        }
      }
    }
  }
}
}

int main(void) {
  stencil_3d_kernel();
  return 0;
}
