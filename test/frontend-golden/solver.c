/* solver (dsp, 48^2) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(solver) suite(dsp) dtype(f64) lanes(1) size(48^2)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static double og_lm[2304];
static double og_x[48];
static double og_b[48];

void solver_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(sweep) hls(clean)
  for (int i = 0; i < 48; ++i) {
    for (int j = 0; j < OG_TRI(i, 48); ++j) {
      og_x[i] -= (og_lm[48*i + j] * og_b[j]);
    }
  }
  #pragma dsa decouple region(scale) hls(clean)
  for (int i = 0; i < 48; ++i) {
    og_x[i] = (og_x[i] / og_lm[49*i]);
  }
}
}

int main(void) {
  solver_kernel();
  return 0;
}
