/* fft (dsp, 2^12) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(fft) suite(dsp) dtype(f32) lanes(2) size(2^12)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static float og_re[4096];
static float og_im[4096];
static float og_nre[4096];
static float og_nim[4096];
static float og_wre[64];
static float og_wim[64];

void fft_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(butterfly) hls(variable_trip 2 1)
  for (int j = 0; j < 64; ++j) {
    for (int i = 0; i < 32; ++i) {
      og_nre[i + 64*j] = (og_re[i + 64*j] + ((og_wre[j] * og_re[i + 64*j + 32]) - (og_wim[j] * og_im[i + 64*j + 32])));
      og_nre[i + 64*j + 32] = (og_re[i + 64*j] - ((og_wre[j] * og_re[i + 64*j + 32]) - (og_wim[j] * og_im[i + 64*j + 32])));
      og_nim[i + 64*j] = (og_im[i + 64*j] + ((og_wre[j] * og_im[i + 64*j + 32]) + (og_wim[j] * og_re[i + 64*j + 32])));
      og_nim[i + 64*j + 32] = (og_im[i + 64*j] - ((og_wre[j] * og_im[i + 64*j + 32]) + (og_wim[j] * og_re[i + 64*j + 32])));
    }
  }
}
}

#pragma dsa tune desc(peel last iterations to coalesce strided scalar access)
void fft_kernel_tuned(void) {
#pragma dsa config
{
  #pragma dsa decouple region(butterfly_peeled) hls(variable_trip 2 1)
  for (int j = 0; j < 64; ++j) {
    for (int i = 0; i < 32; ++i) {
      og_nre[2*i + 64*j] = (og_re[2*i + 64*j] + ((og_wre[j] * og_re[2*i + 64*j + 1]) - (og_wim[j] * og_im[2*i + 64*j + 1])));
      og_nre[2*i + 64*j + 1] = (og_re[2*i + 64*j] - ((og_wre[j] * og_re[2*i + 64*j + 1]) - (og_wim[j] * og_im[2*i + 64*j + 1])));
      og_nim[2*i + 64*j] = (og_im[2*i + 64*j] + ((og_wre[j] * og_im[2*i + 64*j + 1]) + (og_wim[j] * og_re[2*i + 64*j + 1])));
      og_nim[2*i + 64*j + 1] = (og_im[2*i + 64*j] - ((og_wre[j] * og_im[2*i + 64*j + 1]) + (og_wim[j] * og_re[2*i + 64*j + 1])));
    }
  }
}
}

int main(void) {
  fft_kernel();
  return 0;
}
