/* stencil-2d (machsuite, 66^2x32) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(stencil-2d) suite(machsuite) dtype(i64) lanes(1) size(66^2x32) window_reuse
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static int64_t og_sin[4356];
static int64_t og_sout[4096];
static int64_t og_f[9];

void stencil_2d_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(conv3x3) hls(clean)
  for (int t = 0; t < 32; ++t) {
    for (int r = 0; r < 64; ++r) {
      for (int c = 0; c < 64; ++c) {
        og_sout[c + 64*r] = (((((((((og_f[0] * og_sin[c + 66*r]) + (og_f[1] * og_sin[c + 66*r + 1])) + (og_f[2] * og_sin[c + 66*r + 2])) + (og_f[3] * og_sin[c + 66*r + 66])) + (og_f[4] * og_sin[c + 66*r + 67])) + (og_f[5] * og_sin[c + 66*r + 68])) + (og_f[6] * og_sin[c + 66*r + 132])) + (og_f[7] * og_sin[c + 66*r + 133])) + (og_f[8] * og_sin[c + 66*r + 134]));
      }
    }
  }
}
}

#pragma dsa tune desc(manually unroll columns to reuse overlapped window loads)
void stencil_2d_kernel_tuned(void) {
#pragma dsa config
{
  #pragma dsa decouple region(conv3x3_unroll2) hls(clean)
  for (int t = 0; t < 32; ++t) {
    for (int r = 0; r < 64; ++r) {
      for (int c = 0; c < 32; ++c) {
        og_sout[2*c + 64*r] = (((((((((og_f[0] * og_sin[2*c + 66*r]) + (og_f[1] * og_sin[2*c + 66*r + 1])) + (og_f[2] * og_sin[2*c + 66*r + 2])) + (og_f[3] * og_sin[2*c + 66*r + 66])) + (og_f[4] * og_sin[2*c + 66*r + 67])) + (og_f[5] * og_sin[2*c + 66*r + 68])) + (og_f[6] * og_sin[2*c + 66*r + 132])) + (og_f[7] * og_sin[2*c + 66*r + 133])) + (og_f[8] * og_sin[2*c + 66*r + 134]));
        og_sout[2*c + 64*r + 1] = (((((((((og_f[0] * og_sin[2*c + 66*r + 1]) + (og_f[1] * og_sin[2*c + 66*r + 2])) + (og_f[2] * og_sin[2*c + 66*r + 3])) + (og_f[3] * og_sin[2*c + 66*r + 67])) + (og_f[4] * og_sin[2*c + 66*r + 68])) + (og_f[5] * og_sin[2*c + 66*r + 69])) + (og_f[6] * og_sin[2*c + 66*r + 133])) + (og_f[7] * og_sin[2*c + 66*r + 134])) + (og_f[8] * og_sin[2*c + 66*r + 135]));
      }
    }
  }
}
}

int main(void) {
  stencil_2d_kernel();
  return 0;
}
