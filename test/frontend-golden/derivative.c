/* derivative (vision, 130^2x4) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(derivative) suite(vision) dtype(i16) lanes(1) size(130^2x4) window_reuse
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static int16_t og_img[16900];
static int16_t og_out[16384];
static int16_t og_gx = 1;
static int16_t og_gy = 1;

void derivative_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(sobel) hls(clean)
  for (int t = 0; t < 4; ++t) {
    for (int r = 0; r < 128; ++r) {
      for (int c = 0; c < 128; ++c) {
        og_out[c + 128*r] = (((og_gx * fabs((og_img[c + 130*r + 132] - og_img[c + 130*r + 130]))) + (og_gy * fabs((og_img[c + 130*r + 261] - og_img[c + 130*r + 1])))) / 4);
      }
    }
  }
}
}

int main(void) {
  derivative_kernel();
  return 0;
}
