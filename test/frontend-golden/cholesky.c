/* cholesky (dsp, 48^2) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(cholesky) suite(dsp) dtype(f64) lanes(1) size(48^2)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static double og_a[2304];
static double og_l[2304];

void cholesky_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(update) hls(variable_trip 10 5)
  for (int j = 0; j < 48; ++j) {
    for (int i = 0; i < OG_TRI(j, 48); ++i) {
      for (int k = 0; k < OG_TRI(i, 48); ++k) {
        og_l[48*i + j] -= (og_a[48*i + k] * og_a[48*j + k]);
      }
    }
  }
  #pragma dsa decouple region(scale) hls(variable_trip 10 5)
  for (int j = 0; j < 48; ++j) {
    for (int i = 0; i < OG_TRI(j, 48); ++i) {
      og_l[48*i + j] = (og_l[48*i + j] / sqrt(og_a[49*j]));
    }
  }
}
}

int main(void) {
  cholesky_kernel();
  return 0;
}
