/* convert-bit (vision, 128^2x4) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(convert-bit) suite(vision) dtype(i16) lanes(1) size(128^2x4)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static int16_t og_cin[65536];
static int16_t og_cout[65536];
static int16_t og_bias = 1;

void convert_bit_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(convert) hls(clean)
  for (int i = 0; i < 65536; ++i) {
    og_cout[i] = ((og_cin[i] >> 4) + og_bias);
  }
}
}

int main(void) {
  convert_bit_kernel();
  return 0;
}
