/* channel-ext (vision, 128^2x4) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(channel-ext) suite(vision) dtype(i16) lanes(1) size(128^2x4)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static int16_t og_cin[262144];
static int16_t og_cout[65536];

void channel_ext_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(extract) hls(strided 8)
  for (int i = 0; i < 65536; ++i) {
    og_cout[i] = og_cin[4*i + 2];
  }
}
}

int main(void) {
  channel_ext_kernel();
  return 0;
}
