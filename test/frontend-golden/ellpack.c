/* ellpack (machsuite, 494x4) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(ellpack) suite(machsuite) dtype(f64) lanes(1) size(494x4) broadcast
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static double og_va[1976];
static int32_t og_cidx[1976];
static double og_x[494];
static double og_y[494];

void ellpack_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(ell) hls(clean)
  for (int row = 0; row < 494; ++row) {
    for (int j = 0; j < 4; ++j) {
      og_y[row] += (og_va[j + 4*row] * og_x[og_cidx[j + 4*row]]);
    }
  }
}
}

int main(void) {
  ellpack_kernel();
  return 0;
}
