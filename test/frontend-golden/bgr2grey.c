/* bgr2grey (vision, 128^2x4) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(bgr2grey) suite(vision) dtype(i16) lanes(1) size(128^2x4)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static int16_t og_bgr[196608];
static int16_t og_grey[65536];
static int16_t og_wb = 1;
static int16_t og_wg = 1;
static int16_t og_wr = 1;
static int16_t og_round = 1;

void bgr2grey_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(grey) hls(strided 9)
  for (int i = 0; i < 65536; ++i) {
    og_grey[i] = (((((og_wb * og_bgr[3*i]) + (og_wg * og_bgr[3*i + 1])) + (og_wr * og_bgr[3*i + 2])) + og_round) / 256);
  }
}
}

int main(void) {
  bgr2grey_kernel();
  return 0;
}
