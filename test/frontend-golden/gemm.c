/* gemm (machsuite, 64^2) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(gemm) suite(machsuite) dtype(i64) lanes(1) size(64^2)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static int64_t og_a[4096];
static int64_t og_b[4096];
static int64_t og_c[4096];

void gemm_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(blocked) hls(clean)
  for (int i = 0; i < 64; ++i) {
    for (int k = 0; k < 64; ++k) {
      for (int j = 0; j < 64; ++j) {
        og_c[64*i + j] += (og_a[64*i + k] * og_b[j + 64*k]);
      }
    }
  }
}
}

#pragma dsa tune desc(unroll across two inner-loop dimensions (tensorize))
void gemm_kernel_tuned(void) {
#pragma dsa config
{
  #pragma dsa decouple region(blocked_2d) hls(clean)
  for (int i = 0; i < 64; ++i) {
    for (int k = 0; k < 32; ++k) {
      for (int j = 0; j < 32; ++j) {
        og_c[64*i + 2*j] += ((og_a[64*i + 2*k] * og_b[2*j + 128*k]) + (og_a[64*i + 2*k + 1] * og_b[2*j + 128*k + 64]));
        og_c[64*i + 2*j + 1] += ((og_a[64*i + 2*k] * og_b[2*j + 128*k + 1]) + (og_a[64*i + 2*k + 1] * og_b[2*j + 128*k + 65]));
      }
    }
  }
}
}

int main(void) {
  gemm_kernel();
  return 0;
}
