/* acc-weight (vision, 128^2x4) - generated from the OverGen loop-nest IR */
#pragma dsa kernel name(acc-weight) suite(vision) dtype(i16) lanes(1) size(128^2x4)
#include <stdint.h>
#include <math.h>

#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define OG_TRI(v, n) (((v) % (n)) + 1)

static int16_t og_accb[65536];
static int16_t og_ain[65536];
static int16_t og_ialpha = 1;
static int16_t og_alpha = 1;

void acc_weight_kernel(void) {
#pragma dsa config
{
  #pragma dsa decouple region(accw) hls(clean)
  for (int i = 0; i < 65536; ++i) {
    og_accb[i] = (((og_accb[i] * og_ialpha) + (og_ain[i] * og_alpha)) / 256);
  }
}
}

int main(void) {
  acc_weight_kernel();
  return 0;
}
