(* The fault-injection harness itself: plans must be pure functions of
   (seed, point, visit index), bounded by the configured rate, and fully
   inert while disarmed. *)

module Fault = Overgen_fault.Fault

let visit pt =
  match Fault.point pt with
  | () -> None
  | exception (Fault.Injected { kind; _ }) -> Some kind

(* Replay [n] visits of one point and record which indices injected. *)
let pattern cfg pt n =
  Fault.with_faults cfg (fun () ->
      List.init n (fun _ -> visit pt))

let test_determinism () =
  let cfg = { Fault.default_config with seed = 5; rate = 0.3 } in
  let a = pattern cfg "p" 200 in
  let b = pattern cfg "p" 200 in
  Alcotest.(check bool) "same seed, same plan" true (a = b);
  let c = pattern { cfg with seed = 6 } "p" 200 in
  Alcotest.(check bool) "different seed, different plan" false (a = c)

let test_rate_bounds () =
  let inj cfg =
    List.length (List.filter Option.is_some (pattern cfg "p" 400))
  in
  Alcotest.(check int) "rate 0 injects nothing" 0
    (inj { Fault.default_config with rate = 0.0 });
  Alcotest.(check int) "rate 1 injects always" 400
    (inj { Fault.default_config with rate = 1.0 });
  let n = inj { Fault.default_config with seed = 11; rate = 0.3 } in
  Alcotest.(check bool)
    (Printf.sprintf "rate 0.3 injects roughly 120/400 (got %d)" n)
    true
    (n > 60 && n < 180)

let test_kinds () =
  let kinds cfg =
    List.filter_map Fun.id (pattern cfg "p" 100)
  in
  Alcotest.(check bool) "fraction 1 is all transient" true
    (List.for_all
       (( = ) Fault.Transient)
       (kinds { Fault.default_config with rate = 1.0; transient_fraction = 1.0 }));
  Alcotest.(check bool) "fraction 0 is all deterministic" true
    (List.for_all
       (( = ) Fault.Deterministic)
       (kinds { Fault.default_config with rate = 1.0; transient_fraction = 0.0 }));
  Alcotest.(check bool) "is_transient discriminates" true
    (Fault.is_transient (Fault.Injected { point = "p"; kind = Transient })
    && (not
          (Fault.is_transient
             (Fault.Injected { point = "p"; kind = Deterministic })))
    && not (Fault.is_transient Exit))

let test_points_filter () =
  let cfg =
    { Fault.default_config with rate = 1.0; points = [ "only.this" ] }
  in
  Fault.with_faults cfg (fun () ->
      Alcotest.(check bool) "listed point injects" true
        (visit "only.this" <> None);
      Alcotest.(check bool) "unlisted point is untouched" true
        (visit "other" = None));
  (* Unlisted points are not even counted. *)
  Fault.with_faults cfg (fun () -> ignore (visit "other"));
  Alcotest.(check bool) "unlisted point leaves no stats" true
    (List.for_all (fun (p, _, _) -> p <> "other") (Fault.stats ()))

let test_disarmed () =
  Alcotest.(check bool) "starts disarmed" false (Fault.armed ());
  List.iter Fault.point Fault.Points.all;
  Alcotest.(check int) "disarmed visits cost nothing" 0
    (Fault.injected_total ())

let test_stats () =
  let cfg = { Fault.default_config with seed = 3; rate = 0.5 } in
  Fault.with_faults cfg (fun () ->
      for _ = 1 to 50 do
        ignore (visit "a")
      done;
      for _ = 1 to 20 do
        ignore (visit "b")
      done);
  Alcotest.(check bool) "armed state restored" false (Fault.armed ());
  (match Fault.stats () with
  | [ ("a", 50, ia); ("b", 20, ib) ] ->
    Alcotest.(check bool) "injected within visits" true
      (ia >= 0 && ia <= 50 && ib >= 0 && ib <= 20);
    Alcotest.(check int) "total adds up" (ia + ib) (Fault.injected_total ())
  | l ->
    Alcotest.failf "unexpected stats shape (%d points)" (List.length l));
  Fault.reset_stats ();
  Alcotest.(check bool) "reset clears stats" true (Fault.stats () = [])

let test_arm_validation () =
  Alcotest.check_raises "rate > 1 rejected"
    (Invalid_argument "Fault.arm: rate outside [0, 1]") (fun () ->
      Fault.arm { Fault.default_config with rate = 1.5 });
  Alcotest.check_raises "negative fraction rejected"
    (Invalid_argument "Fault.arm: transient_fraction outside [0, 1]")
    (fun () ->
      Fault.arm { Fault.default_config with transient_fraction = -0.1 });
  Alcotest.(check bool) "invalid arm leaves disarmed" false (Fault.armed ())

let tests =
  [
    Alcotest.test_case "plan determinism" `Quick test_determinism;
    Alcotest.test_case "rate bounds" `Quick test_rate_bounds;
    Alcotest.test_case "fault kinds" `Quick test_kinds;
    Alcotest.test_case "points filter" `Quick test_points_filter;
    Alcotest.test_case "disarmed no-op" `Quick test_disarmed;
    Alcotest.test_case "stats bookkeeping" `Quick test_stats;
    Alcotest.test_case "arm validation" `Quick test_arm_validation;
  ]
