(* The network tier: wire framing (round-trip, truncation, version and
   checksum rejection), the consistent-hash shard map, a real
   socket round trip through server + service workers, per-connection id
   namespacing, fault injection at the frame/connection level with the
   exactly-once completion guarantee, and kill-and-restart durable
   replay. *)

open Overgen_workload
module Wire = Overgen_net.Wire
module Shard_map = Overgen_net.Shard_map
module Node = Overgen_net.Node
module Server = Overgen_net.Server
module Client = Overgen_net.Client
module Load_gen = Overgen_net.Load_gen
module Registry = Overgen_service.Registry
module Cache = Overgen_service.Cache
module Service = Overgen_service.Service
module Trace = Overgen_service.Trace
module Fault = Overgen_fault.Fault

let model = lazy (Overgen.train_model ~seed:21 ())

let general =
  lazy
    (match Overgen.general ~model:(Lazy.force model) Kernels.all with
    | Ok o -> o
    | Error e -> failwith ("general overlay: " ^ e))

(* registers only what a durable restore left missing, so a rebooted
   node skips regeneration *)
let setup registry =
  if Registry.find registry "general" = None then
    match Registry.register registry ~name:"general" (Lazy.force general) with
    | Ok _ -> ()
    | Error e -> failwith ("register general: " ^ e)

let must_node = function
  | Ok n -> n
  | Error e -> Alcotest.failf "node init: %s" e

let tmp_path prefix =
  Filename.temp_file ("overgen-net-" ^ prefix) ".store"

(* ---------------- framing ---------------- *)

let test_frame_roundtrip () =
  let payload = "hello frames" in
  let f = Wire.frame payload in
  Alcotest.(check int)
    "frame size" (Wire.header_bytes + String.length payload) (String.length f);
  match Wire.deframe f with
  | Ok (p, consumed) ->
    Alcotest.(check string) "payload back" payload p;
    Alcotest.(check int) "consumed all" (String.length f) consumed
  | Error e -> Alcotest.failf "deframe: %s" (Wire.frame_error_to_string e)

let test_truncated_rejected () =
  let f = Wire.frame "some payload bytes" in
  (* every proper prefix must be rejected as truncated, never misparsed *)
  for cut = 0 to String.length f - 1 do
    match Wire.deframe (String.sub f 0 cut) with
    | Error Wire.Truncated -> ()
    | Error e ->
      Alcotest.failf "cut %d: wrong error %s" cut (Wire.frame_error_to_string e)
    | Ok _ -> Alcotest.failf "cut %d: parsed a truncated frame" cut
  done

let test_version_and_corruption_rejected () =
  let f = Wire.frame "payload" in
  let flip i c s =
    let b = Bytes.of_string s in
    Bytes.set b i c;
    Bytes.to_string b
  in
  (match Wire.deframe (flip 2 (Char.chr (Wire.version + 1)) f) with
  | Error (Wire.Version_mismatch v) ->
    Alcotest.(check int) "reports peer version" (Wire.version + 1) v
  | _ -> Alcotest.fail "future version accepted");
  (match Wire.deframe (flip 0 'X' f) with
  | Error Wire.Bad_magic -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (match Wire.deframe (flip (Wire.header_bytes + 2) '\xFF' f) with
  | Error Wire.Checksum_mismatch -> ()
  | _ -> Alcotest.fail "corrupt payload accepted");
  (* an announced length beyond the cap is rejected without allocating *)
  let huge = Bytes.of_string f in
  Bytes.set_int32_le huge 4 (Int32.of_int (Wire.max_payload_bytes + 1));
  match Wire.deframe (Bytes.to_string huge) with
  | Error (Wire.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized frame accepted"

(* ---------------- message round-trip properties ---------------- *)

let gen_request =
  QCheck.Gen.(
    let* name = oneofl Kernels.names in
    let* id = int_range 0 1_000_000 in
    let* user = string_size ~gen:printable (int_range 0 12) in
    let* tenant = oneofl [ ""; "acme"; "t-1"; "batch tenant" ] in
    let* overlay = oneofl [ "general"; "dense"; "a b\nc" ] in
    let* tuned = bool in
    let* trace =
      oneofl [ ""; "00ff00ff00ff00ff00ff00ff00ff00ff"; "deadbeef" ]
    in
    let* parent_span = int_range 0 1_000_000 in
    let* as_source = bool in
    let payload =
      (* both payload forms ride the same Compile envelope *)
      if as_source then Wire.Source (C_source.emit (Kernels.find name))
      else Wire.Kernel (Kernels.find name)
    in
    return
      {
        Wire.id;
        user;
        tenant;
        overlay;
        payload;
        tuned;
        trace;
        parent_span;
      })

let prop_req_roundtrip =
  QCheck.Test.make ~name:"requests survive encode-frame-deframe-decode"
    ~count:120 (QCheck.make gen_request) (fun req ->
      let payload = Wire.encode_req (Wire.Compile req) in
      let framed = Wire.frame payload in
      match Wire.deframe framed with
      | Error e -> QCheck.Test.fail_reportf "deframe: %s" (Wire.frame_error_to_string e)
      | Ok (p, _) -> (
        match Wire.decode_req p with
        | Error e -> QCheck.Test.fail_reportf "decode: %s" e
        | Ok (Wire.Compile r) ->
          (* bit-exact: re-encoding the decoded request reproduces the
             original frame byte for byte *)
          Wire.frame (Wire.encode_req (Wire.Compile r)) = framed
          && r.Wire.id = req.Wire.id
          && r.Wire.user = req.Wire.user
          && r.Wire.tenant = req.Wire.tenant
          && r.Wire.overlay = req.Wire.overlay
          && r.Wire.tuned = req.Wire.tuned
          && r.Wire.trace = req.Wire.trace
          && r.Wire.parent_span = req.Wire.parent_span
          && (match (r.Wire.payload, req.Wire.payload) with
             | Wire.Kernel a, Wire.Kernel b -> Ir.pretty a = Ir.pretty b
             | Wire.Source a, Wire.Source b -> a = b
             | _ -> false)
        | Ok _ -> false))

let gen_wire_error =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Wire.Unknown_overlay s) (string_size (int_range 0 8));
        return Wire.Queue_full;
        map (fun s -> Wire.Compile_error s) (string_size (int_range 0 20));
        map (fun s -> Wire.Transient_failure s) (string_size (int_range 0 20));
        return Wire.Deadline_exceeded;
        return Wire.Shutting_down;
        map (fun s -> Wire.Source_error s) (string_size (int_range 0 20));
      ])

let gen_resp =
  QCheck.Gen.(
    oneof
      [
        (let* id = int_range 0 1_000_000 in
         let* e = gen_wire_error in
         let* hit = bool in
         let* shard = int_range 0 64 in
         return
           (Wire.Result
              { id; outcome = Error e; cache_hit = hit; service_s = 0.5; shard }));
        (let* id = int_range 0 1_000_000 in
         let* owner = int_range 0 64 in
         return (Wire.Redirect { id; owner }));
        (let* shard = int_range 0 16 in
         return (Wire.Pong { shard; shards = 16 }));
        (let* served = int_range 0 100000 in
         return
           (Wire.Stats { shard = 1; served; hits = 3; misses = 4; warm_loaded = 5 }));
        return Wire.Bye;
      ])

let prop_resp_roundtrip =
  QCheck.Test.make ~name:"responses survive encode-frame-deframe-decode"
    ~count:120 (QCheck.make gen_resp) (fun resp ->
      let framed = Wire.frame (Wire.encode_resp resp) in
      match Wire.deframe framed with
      | Error _ -> false
      | Ok (p, _) -> (
        match Wire.decode_resp p with
        | Error e -> QCheck.Test.fail_reportf "decode: %s" e
        | Ok r -> Wire.frame (Wire.encode_resp r) = framed && r = resp))

let test_schema_rejected () =
  (* a response payload handed to the request decoder must be refused *)
  match Wire.decode_req (Wire.encode_resp Wire.Bye) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "request decoder accepted a response schema"

(* ---------------- shard map ---------------- *)

let test_shard_map () =
  let m1 = Shard_map.Default.make ~shards:4 () in
  let m2 = Shard_map.Default.make ~shards:4 () in
  let keys = List.init 4000 (fun i -> Printf.sprintf "key-%d" i) in
  List.iter
    (fun k ->
      let o = Shard_map.Default.owner m1 k in
      Alcotest.(check bool) "in range" true (o >= 0 && o < 4);
      Alcotest.(check int) "deterministic across instances" o
        (Shard_map.Default.owner m2 k))
    keys;
  let hist = Shard_map.Default.histogram m1 keys in
  Array.iteri
    (fun s c ->
      if c = 0 then Alcotest.failf "shard %d owns no keys out of 4000" s)
    hist;
  Alcotest.(check int) "histogram is a partition" 4000
    (Array.fold_left ( + ) 0 hist);
  Alcotest.check_raises "zero shards rejected"
    (Invalid_argument "Shard_map.make: shards < 1") (fun () ->
      ignore (Shard_map.Default.make ~shards:0 ()))

(* ---------------- socket round trip ---------------- *)

let start_single_shard ?store_path () =
  let fd, port = Result.get_ok (Server.listen ~port:0 ()) in
  let config =
    {
      (Node.default_config ~cluster:[| { Node.host = "127.0.0.1"; port } |] ~me:0) with
      store_path;
    }
  in
  let node = must_node (Node.init ~setup config) in
  (Server.start ~node ~fd (), node, port)

let compile_req ?(trace = "") ?(tenant = "") ~id kernel =
  Wire.Compile
    {
      Wire.id;
      user = "u";
      tenant;
      overlay = "general";
      payload = Wire.Kernel kernel;
      tuned = false;
      trace;
      parent_span = 0;
    }

let test_socket_roundtrip () =
  let server, node, port = start_single_shard () in
  let c = Result.get_ok (Client.connect ~host:"127.0.0.1" ~port) in
  (match Client.rpc c Wire.Ping with
  | Ok (Wire.Pong { shard = 0; shards = 1 }) -> ()
  | Ok _ -> Alcotest.fail "wrong pong"
  | Error e -> Alcotest.failf "ping: %s" e);
  let kernel = List.hd Kernels.all in
  let first =
    match Client.rpc c (compile_req ~id:7 kernel) with
    | Ok (Wire.Result { id = 7; outcome = Ok schedules; cache_hit = false; _ }) ->
      Alcotest.(check bool) "schedules nonempty" true (schedules <> []);
      schedules
    | Ok (Wire.Result { outcome = Error e; _ }) ->
      Alcotest.failf "compile: %s" (Wire.wire_error_to_string e)
    | Ok _ -> Alcotest.fail "wrong response"
    | Error e -> Alcotest.failf "rpc: %s" e
  in
  (* same request again: a cache hit with the identical schedules *)
  (match Client.rpc c (compile_req ~id:8 kernel) with
  | Ok (Wire.Result { id = 8; outcome = Ok schedules; cache_hit = true; _ }) ->
    Alcotest.(check bool) "hit serves identical schedules" true
      (schedules = first)
  | Ok _ -> Alcotest.fail "expected a cache hit"
  | Error e -> Alcotest.failf "rpc: %s" e);
  (match Client.rpc c Wire.Stats_req with
  | Ok (Wire.Stats { served = 2; hits = 1; _ }) -> ()
  | Ok (Wire.Stats s) ->
    Alcotest.failf "stats: served %d hits %d" s.served s.hits
  | Ok _ | Error _ -> Alcotest.fail "stats rpc failed");
  Client.close c;
  Server.stop server;
  Node.shutdown node

let source_req ~id ?(tuned = false) src =
  Wire.Compile
    {
      Wire.id;
      user = "u";
      tenant = "";
      overlay = "general";
      payload = Wire.Source src;
      tuned;
      trace = "";
      parent_span = 0;
    }

(* A kernel submitted as pragma'd C source must come back compiled, and —
   because the shard's schedule cache keys on the lowered IR, not the
   payload form — the same kernel later submitted as IR must hit the
   entry the source compile populated. *)
let test_source_payload_over_socket () =
  let server, node, port = start_single_shard () in
  let c = Result.get_ok (Client.connect ~host:"127.0.0.1" ~port) in
  let kernel = List.hd Kernels.all in
  let src = C_source.emit kernel in
  let from_source =
    match Client.rpc c (source_req ~id:1 src) with
    | Ok (Wire.Result { id = 1; outcome = Ok schedules; cache_hit = false; _ }) ->
      Alcotest.(check bool) "schedules nonempty" true (schedules <> []);
      schedules
    | Ok (Wire.Result { outcome = Error e; _ }) ->
      Alcotest.failf "source compile: %s" (Wire.wire_error_to_string e)
    | Ok _ -> Alcotest.fail "wrong response"
    | Error e -> Alcotest.failf "rpc: %s" e
  in
  (* the IR form of the same kernel: a cache hit on the source's entry *)
  (match Client.rpc c (compile_req ~id:2 kernel) with
  | Ok (Wire.Result { id = 2; outcome = Ok schedules; cache_hit = true; _ }) ->
    Alcotest.(check bool) "IR form hits the source-populated entry" true
      (schedules = from_source)
  | Ok (Wire.Result { cache_hit = false; _ }) ->
    Alcotest.fail "IR form missed: source and IR diverged on the cache key"
  | Ok _ -> Alcotest.fail "wrong response"
  | Error e -> Alcotest.failf "rpc: %s" e);
  (* a malformed source is a deterministic, located, non-retryable error *)
  (match Client.rpc c (source_req ~id:3 "int broken(") with
  | Ok (Wire.Result { id = 3; outcome = Error (Wire.Source_error e); _ }) ->
    Alcotest.(check bool) "error is located" true
      (String.length e > 0 && e.[0] >= '1' && e.[0] <= '9');
    Alcotest.(check bool) "source errors are not retryable" false
      (Wire.retryable (Wire.Source_error e))
  | Ok (Wire.Result { outcome = Error e; _ }) ->
    Alcotest.failf "wrong error: %s" (Wire.wire_error_to_string e)
  | Ok _ -> Alcotest.fail "wrong response"
  | Error e -> Alcotest.failf "rpc: %s" e);
  Client.close c;
  Server.stop server;
  Node.shutdown node

let test_quiesced_answers_shutting_down () =
  let server, node, port = start_single_shard () in
  Node.quiesce node;
  let c = Result.get_ok (Client.connect ~host:"127.0.0.1" ~port) in
  (match Client.rpc c (compile_req ~id:1 (List.hd Kernels.all)) with
  | Ok (Wire.Result { id = 1; outcome = Error Wire.Shutting_down; _ }) -> ()
  | Ok _ -> Alcotest.fail "quiesced node accepted a compile"
  | Error e -> Alcotest.failf "rpc: %s" e);
  Client.close c;
  Server.stop server;
  Node.shutdown node

(* Two connections, both using client id 0 concurrently, for different
   kernels: server-side id namespacing must route each answer to its own
   connection. *)
let test_two_clients_same_id () =
  let server, node, port = start_single_shard () in
  let k0 = List.nth Kernels.all 0 and k1 = List.nth Kernels.all 1 in
  let digest schedules =
    Digest.to_hex
      (Digest.string
         (String.concat ";"
            (List.map
               (fun (s : Overgen_scheduler.Schedule.t) -> string_of_int s.ii)
               schedules)))
  in
  let answer = Array.make 2 None in
  let client i kernel () =
    let c = Result.get_ok (Client.connect ~host:"127.0.0.1" ~port) in
    (match Client.rpc c (compile_req ~id:0 kernel) with
    | Ok (Wire.Result { id = 0; outcome = Ok schedules; _ }) ->
      answer.(i) <- Some (digest schedules)
    | Ok _ -> ()
    | Error _ -> ());
    Client.close c
  in
  let t0 = Thread.create (client 0 k0) () in
  let t1 = Thread.create (client 1 k1) () in
  Thread.join t0;
  Thread.join t1;
  (* reference answers straight from a service on the same registry *)
  let reference kernel =
    let svc = Service.create (Node.registry node) in
    let resps =
      Service.run svc
        [ { Service.id = 0; user = "r"; tenant = ""; overlay = "general";
            payload = Service.Kernel kernel; tuned = false; trace = "";
            deadline_s = None } ]
    in
    match resps with
    | [ { Service.result = Ok schedules; _ } ] -> digest schedules
    | _ -> Alcotest.fail "reference compile failed"
  in
  Alcotest.(check (option string)) "client 0 got kernel 0's answer"
    (Some (reference k0)) answer.(0);
  Alcotest.(check (option string)) "client 1 got kernel 1's answer"
    (Some (reference k1)) answer.(1);
  Server.stop server;
  Node.shutdown node

(* ---------------- faults: exactly one response per request ----------- *)

let test_serve_under_faults () =
  let server, node, port = start_single_shard () in
  let spec =
    Trace.spec ~seed:7 ~requests:150 ~users:4 ~working_set:2
      ~overlays:[ ("general", Kernels.all) ] ()
  in
  let requests =
    Trace.generate spec
    |> List.map (fun (r : Service.request) ->
           {
             Wire.id = r.id;
             user = r.user;
             tenant = r.tenant;
             overlay = r.overlay;
             payload =
               (match r.payload with
               | Service.Kernel k -> Wire.Kernel k
               | Service.Source src -> Wire.Source src);
             tuned = r.tuned;
             trace = "";
             parent_span = 0;
           })
    |> Array.of_list
  in
  let summary =
    Fault.with_faults
      {
        Fault.default_config with
        seed = 3;
        rate = 0.04;
        points = [ Fault.Points.net_conn_drop; Fault.Points.net_frame_corrupt ];
      }
      (fun () ->
        Load_gen.run
          {
            Load_gen.cluster = [| { Node.host = "127.0.0.1"; port } |];
            vnodes = Shard_map.default_vnodes;
            requests;
            rate = 600.0;
            timeout_s = 60.0;
            misroute_every = None;
          })
  in
  Alcotest.(check int) "every request answered exactly once" 150
    summary.Load_gen.completed;
  Alcotest.(check int) "no deterministic failures" 0 summary.Load_gen.failed;
  Alcotest.(check bool) "faults actually dropped connections" true
    (summary.Load_gen.reconnects > 0);
  (* connection loss forced resends, yet the scheduler ran exactly once
     per distinct key: retried keys were served by the cache *)
  let stats = Cache.stats (Node.cache node) in
  Alcotest.(check int) "one compute per distinct key"
    (Trace.distinct_keys spec) stats.Cache.misses;
  Server.stop server;
  Node.shutdown node

(* ---------------- kill and restart: durable replay ---------------- *)

let test_reboot_replays_store () =
  let store_path = tmp_path "reboot" in
  Sys.remove store_path;
  let config =
    {
      (Node.default_config
         ~cluster:[| { Node.host = "127.0.0.1"; port = 0 } |]
         ~me:0)
      with
      store_path = Some store_path;
    }
  in
  let node = must_node (Node.init ~setup config) in
  let spec =
    Trace.spec ~seed:11 ~requests:60 ~users:3 ~working_set:2
      ~overlays:[ ("general", Kernels.all) ] ()
  in
  let trace =
    Trace.generate spec
    |> List.map (fun (r : Service.request) ->
           {
             Wire.id = r.id;
             user = r.user;
             tenant = r.tenant;
             overlay = r.overlay;
             payload =
               (match r.payload with
               | Service.Kernel k -> Wire.Kernel k
               | Service.Source src -> Wire.Source src);
             tuned = r.tuned;
             trace = "";
             parent_span = 0;
           })
  in
  let drive node =
    let m = Mutex.create () in
    let got = ref 0 and ok = ref 0 and hits = ref 0 in
    List.iter
      (fun req ->
        let respond = function
          | Wire.Result { outcome; cache_hit; _ } ->
            Mutex.lock m;
            incr got;
            if outcome <> Error Wire.Shutting_down && Result.is_ok outcome then
              incr ok;
            if cache_hit then incr hits;
            Mutex.unlock m
          | _ -> ()
        in
        match Node.handle_net node (Wire.Compile req) ~respond with
        | Node.Async | Node.Done -> ()
        | Node.Forward _ -> Alcotest.fail "single shard forwarded")
      trace;
    let deadline = Unix.gettimeofday () +. 60.0 in
    let rec wait () =
      Mutex.lock m;
      let g = !got in
      Mutex.unlock m;
      if g < List.length trace then
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "only %d/%d responses" g (List.length trace)
        else begin
          Thread.yield ();
          Unix.sleepf 0.005;
          wait ()
        end
    in
    wait ();
    (!ok, !hits)
  in
  let ok1, _ = drive node in
  Alcotest.(check int) "first run all ok" 60 ok1;
  (* crash-restart: reboot tears the node down and replays the store *)
  let node2 = must_node (Node.reboot node) in
  Alcotest.(check bool) "cache warm-started from the store" true
    (Node.warm_loaded node2 > 0);
  Alcotest.(check (list string))
    "overlays restored without regeneration" [ "general" ]
    (Registry.names (Node.registry node2));
  let ok2, hits2 = drive node2 in
  Alcotest.(check int) "replay all ok" 60 ok2;
  Alcotest.(check int) "replayed traffic is 100% cache hits" 60 hits2;
  Node.shutdown node2;
  Sys.remove store_path

(* ---------------- trace context through forward/redirect ------------- *)

let two_shard_config ~forward =
  {
    (Node.default_config
       ~cluster:
         [|
           { Node.host = "127.0.0.1"; port = 0 };
           { Node.host = "127.0.0.1"; port = 0 };
         |]
       ~me:0)
    with
    forward;
  }

(* A misrouted compile must leave shard 0 with its trace context intact:
   forwarded verbatim under [forward = true], answered [Redirect] (the
   client re-sends, keeping its own context) under [forward = false]. *)
let test_forward_preserves_trace () =
  let node = must_node (Node.init ~setup (two_shard_config ~forward:true)) in
  let mk kernel =
    {
      Wire.id = 1;
      user = "u";
      tenant = "";
      overlay = "general";
      payload = Wire.Kernel kernel;
      tuned = false;
      trace = "00ff00ff00ff00ff00ff00ff00ff00ff";
      parent_span = 42;
    }
  in
  let req =
    match
      List.find_opt (fun k -> Node.owner_of node (mk k) = 1) Kernels.all
    with
    | Some k -> mk k
    | None -> Alcotest.fail "no kernel hashes to shard 1"
  in
  (match
     Node.handle_net node (Wire.Compile req) ~respond:(fun _ ->
         Alcotest.fail "forwarding node answered locally")
   with
  | Node.Forward { owner = 1; req = r } ->
    Alcotest.(check string) "trace id survives the forward" req.Wire.trace
      r.Wire.trace;
    Alcotest.(check int) "parent span survives the forward"
      req.Wire.parent_span r.Wire.parent_span
  | Node.Forward { owner; _ } -> Alcotest.failf "forwarded to shard %d" owner
  | Node.Done | Node.Async -> Alcotest.fail "misrouted request not forwarded");
  Node.shutdown node;
  let node = must_node (Node.init ~setup (two_shard_config ~forward:false)) in
  let got = ref None in
  (match Node.handle_net node (Wire.Compile req) ~respond:(fun r -> got := Some r) with
  | Node.Done -> ()
  | Node.Async | Node.Forward _ ->
    Alcotest.fail "redirecting node did not answer synchronously");
  (match !got with
  | Some (Wire.Redirect { id = 1; owner = 1 }) -> ()
  | _ -> Alcotest.fail "expected a Redirect to shard 1");
  Node.shutdown node

(* ---------------- previous-generation payloads ---------------- *)

(* The envelope schema tags are part of the payload: a frame whose
   payload announces the previous schema generation must be refused by
   the decoder (the frame-level version byte is covered separately in
   {!test_version_and_corruption_rejected}). *)
let test_old_schema_payload_rejected () =
  let patch_schema ~tag payload =
    let lt = String.length tag in
    let rec find i =
      if i + lt > String.length payload then
        Alcotest.failf "schema tag %s not found in payload" tag
      else if String.sub payload i lt = tag then i
      else find (i + 1)
    in
    let i = find 0 in
    let b = Bytes.of_string payload in
    (* "...-v4" -> "...-v3": same length, so the length prefix still
       matches and only the schema comparison can reject it — a v3-era
       frame body must decode-reject against the v4 node *)
    Bytes.set b (i + lt - 1) '3';
    Bytes.to_string b
  in
  let req_payload = Wire.encode_req (compile_req ~id:3 (List.hd Kernels.all)) in
  (match Wire.decode_req (patch_schema ~tag:"net-req-v4" req_payload) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "v3 request schema accepted");
  match Wire.decode_resp (patch_schema ~tag:"net-resp-v4" (Wire.encode_resp Wire.Bye)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "v3 response schema accepted"

(* ---------------- cross-process trace merge ---------------- *)

module Obs = Overgen_obs.Obs

(* Two process lanes (a client and a shard) sharing one trace id must
   stitch into a single valid Chrome trace with no orphan parents. *)
let test_merged_trace_validates () =
  Obs.enable ();
  Obs.Span.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.disable ();
      Obs.Span.reset ())
  @@ fun () ->
  let rng = Overgen_util.Rng.of_string "test-net-merge" in
  let trace = Obs.Span.fresh_trace rng in
  Obs.Span.with_trace trace (fun () ->
      Obs.Span.with_span "client_send" ~attrs:[ ("id", "0") ] (fun () -> ()));
  let client_lane = Obs.Export.to_jsonl ~pid:100 (Obs.Span.spans ()) in
  Obs.Span.reset ();
  Obs.Span.with_trace trace (fun () ->
      Obs.Span.with_span "dispatch" (fun () ->
          Obs.Span.with_span "service_process" (fun () -> ())));
  let shard_lane = Obs.Export.to_jsonl ~pid:0 (Obs.Span.spans ()) in
  let lane text =
    match Obs.Export.parse_jsonl text with
    | Ok spans -> spans
    | Error e -> Alcotest.failf "parse_jsonl: %s" e
  in
  let all = lane client_lane @ lane shard_lane in
  Alcotest.(check int) "three spans across two lanes" 3 (List.length all);
  Alcotest.(check (list (pair int int)))
    "no orphan parents" [] (Obs.Export.orphans all);
  List.iter
    (fun ((_, s) : int * Obs.Span.span) ->
      Alcotest.(check string) "every span carries the trace id" trace
        s.Obs.Span.trace)
    all;
  let merged =
    Obs.Export.merge_chrome ~names:[ (100, "client"); (0, "shard-0") ] all
  in
  match Obs.Export.validate_json merged with
  | Ok () -> ()
  | Error e -> Alcotest.failf "merged trace invalid: %s" e

let tests =
  [
    ("frame round-trip", `Quick, test_frame_roundtrip);
    ("truncated frames rejected", `Quick, test_truncated_rejected);
    ("version/corruption rejected", `Quick, test_version_and_corruption_rejected);
    QCheck_alcotest.to_alcotest prop_req_roundtrip;
    QCheck_alcotest.to_alcotest prop_resp_roundtrip;
    ("schema mismatch rejected", `Quick, test_schema_rejected);
    ("shard map", `Quick, test_shard_map);
    ("socket round trip", `Quick, test_socket_roundtrip);
    ("source payload over socket", `Quick, test_source_payload_over_socket);
    ("quiesced answers shutting-down", `Quick, test_quiesced_answers_shutting_down);
    ("two clients share id 0", `Quick, test_two_clients_same_id);
    ("exactly-once under faults", `Quick, test_serve_under_faults);
    ("kill-and-restart replays store", `Quick, test_reboot_replays_store);
    ("forward/redirect preserve trace context", `Quick, test_forward_preserves_trace);
    ("previous-generation schemas rejected", `Quick, test_old_schema_payload_rejected);
    ("merged two-lane trace validates", `Quick, test_merged_trace_validates);
  ]
