(* The overgen command-line tool.

   overgen list                         - show the built-in workloads
   overgen show <kernel>                - pseudo-C source and mDFG summary
   overgen generate <suite|kernel...>   - run the DSE and print the design
   overgen dse <suite|kernel...>        - island-model DSE with a trace dump
   overgen run <suite|kernel...>        - generate, compile and simulate
   overgen compile <suite|kernel...>    - compile only (spans via --trace-out)
   overgen trace-validate <file>        - check an emitted Chrome trace
   overgen trace-merge <spans...>       - stitch per-shard span files into
                                          one Chrome trace
   overgen compare <suite|kernel...>    - OverGen vs the AutoDSE baseline
   overgen serve-bench                  - replay a multi-user compile-request
                                          trace against the compile service
   overgen store {ls,gc,verify}         - inspect and maintain durable
                                          artifact stores
   overgen net-serve                    - serve the compile service over TCP
                                          as a consistent-hash shard cluster
   overgen net-client                   - ping a cluster, scrape its live
                                          ops plane (stats, metrics, health,
                                          events) or drive open-loop load

   compile, dse and serve-bench accept --trace-out FILE.json (Chrome
   trace-event spans) and --metrics-out FILE (Prometheus dump); dse and
   serve-bench accept --store FILE for durable checkpoints / a persistent
   schedule cache. *)

open Cmdliner
open Overgen_workload
module Hls = Overgen_hls.Hls
module Obs = Overgen_obs.Obs
module Store = Overgen_store.Store

(* --- observability plumbing (--trace-out / --metrics-out) --- *)

let trace_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE.json"
        ~doc:
          "Record phase spans and write them as Chrome trace-event JSON \
           (load in chrome://tracing or Perfetto).")

let metrics_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Dump pipeline metrics in Prometheus text exposition format on \
           exit.")

(* Runs [f] with recording enabled iff an output was requested, then emits
   the requested artifacts.  Every Chrome trace is passed through the
   exporter's own JSON validator before it reaches disk. *)
let with_obs ?(registries = fun () -> []) ~trace_out ~metrics_out f =
  if trace_out <> None || metrics_out <> None then Obs.enable ();
  let r = f () in
  (match trace_out with
  | None -> ()
  | Some path ->
    let spans = Obs.Span.spans () in
    let json = Obs.Export.to_chrome spans in
    (match Obs.Export.validate_json json with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "internal error: emitted trace is not valid JSON: %s\n" e;
      exit 1);
    Obs.Export.write_file ~path json;
    Printf.printf "trace written to %s (%d spans)\n" path (List.length spans));
  (match metrics_out with
  | None -> ()
  | Some path ->
    let dump =
      String.concat ""
        (List.map Obs.Metrics.render_prometheus
           (registries () @ [ Obs.Metrics.default ]))
    in
    Obs.Export.write_file ~path dump;
    Printf.printf "metrics written to %s\n" path);
  r

(* A target ending in .c is a source file for the pragma'd-C frontend;
   anything else is a built-in workload or suite name. *)
let parse_source_file path =
  let src =
    match open_in_bin path with
    | exception Sys_error e ->
      Printf.eprintf "%s\n" e;
      exit 1
    | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
  in
  match Overgen_frontend.Frontend.parse src with
  | Ok k -> k
  | Error e ->
    Printf.eprintf "%s:%s\n" path (Overgen_frontend.Frontend.error_to_string e);
    exit 1

let resolve_targets names =
  List.concat_map
    (fun name ->
      if Filename.check_suffix name ".c" then [ parse_source_file name ]
      else
        match List.find_opt (fun s -> Suite.to_string s = name) Suite.all with
        | Some suite -> Kernels.of_suite suite
        | None -> (
          try [ Kernels.find name ]
          with Not_found ->
            Printf.eprintf "unknown workload or suite: %s\n" name;
            exit 1))
    names

let targets_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"TARGET"
        ~doc:
          "Workload names, suite names (dsp, machsuite, vision), or .c \
           source files in the pragma'd kernel dialect.")

let iterations_arg =
  Arg.(
    value & opt int 300
    & info [ "i"; "iterations" ] ~docv:"N" ~doc:"DSE iterations.")

let seed_arg =
  Arg.(value & opt int 17 & info [ "seed" ] ~docv:"SEED" ~doc:"DSE random seed.")

let tuned_arg =
  Arg.(value & flag & info [ "tuned" ] ~doc:"Use manually tuned kernel sources.")

let islands_arg =
  Arg.(
    value & opt int 1
    & info [ "islands" ] ~docv:"N"
        ~doc:"Parallel annealing islands; 1 reproduces the sequential explorer.")

let migration_arg =
  Arg.(
    value & opt int Overgen_dse.Dse.default_config.migration_interval
    & info [ "migration-interval" ] ~docv:"N"
        ~doc:"Iterations between elite migrations across islands.")

let gen_overlay ?(islands = 1)
    ?(migration_interval = Overgen_dse.Dse.default_config.migration_interval)
    ~iterations ~seed ~tuned kernels =
  let model = Overgen.train_model () in
  let config =
    { Overgen_dse.Dse.default_config with iterations; seed; islands; migration_interval }
  in
  Overgen.generate ~config ~tuned ~model kernels

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun suite ->
        Printf.printf "[%s]\n" (Suite.to_string suite);
        List.iter
          (fun (k : Ir.kernel) ->
            Printf.printf "  %-12s %-10s %s%s\n" k.name k.size_desc
              (Overgen_adg.Dtype.to_string k.dtype)
              (match k.og_tuning with Some t -> "  (tunable: " ^ t.desc ^ ")" | None -> ""))
          (Kernels.of_suite suite))
      Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in workloads.")
    Term.(const run $ const ())

(* --- show --- *)

let show_cmd =
  let run names =
    List.iter
      (fun (k : Ir.kernel) ->
        print_string (Ir.pretty k);
        let c = Overgen_mdfg.Compile.compile k in
        let s = Overgen_mdfg.Compile.summarize c in
        Printf.printf
          "best mDFG: %d input / %d output vector ports, %d arrays, ops m/a/d = %d/%d/%d\n\n"
          s.n_in_ports s.n_out_ports s.n_arrays s.n_mul s.n_add s.n_div)
      (resolve_targets names)
  in
  Cmd.v (Cmd.info "show" ~doc:"Print a workload's source and mDFG summary.")
    Term.(const run $ targets_arg)

(* --- generate --- *)

let generate_cmd =
  let run iterations seed tuned islands migration_interval save names =
    let kernels = resolve_targets names in
    let overlay =
      gen_overlay ~islands ~migration_interval ~iterations ~seed ~tuned kernels
    in
    Printf.printf "design: %s\n" (Overgen_adg.Sys_adg.describe overlay.design.sys);
    Printf.printf "objective (est. IPC geomean): %.1f\n" overlay.design.objective;
    Printf.printf "synthesis: %.1f MHz, %s, %.1f modeled hours\n"
      overlay.synth.freq_mhz
      (Overgen_fpga.Res.describe_utilization overlay.synth.res
         ~device:Overgen_fpga.Device.xcvu9p.capacity)
      overlay.synth.hours;
    (match save with
    | Some path ->
      Overgen_adg.Serial.save overlay.design.sys ~path;
      Printf.printf "saved design to %s\n" path
    | None -> ());
    print_string (Overgen_adg.Adg.to_string overlay.design.sys.adg)
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE" ~doc:"Persist the chosen design.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Run the overlay-generation DSE for a workload set.")
    Term.(const run $ iterations_arg $ seed_arg $ tuned_arg $ islands_arg
          $ migration_arg $ save_arg $ targets_arg)

(* --- store --- *)

let open_store path =
  match Store.open_ ~path () with
  | Ok s -> s
  | Error e ->
    Printf.eprintf "cannot open store %s: %s\n" path e;
    exit 1

let store_path_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Store file path.")

let store_ls_cmd =
  let run path =
    let s = open_store path in
    let st = Store.last_open_stats s in
    Printf.printf "%s: %d record(s), %d live binding(s), %d bytes (%d live)\n"
      path st.records (Store.length s) (Store.file_bytes s)
      (Store.live_bytes s);
    if st.truncated_bytes > 0 then
      Printf.printf "recovered: %d damaged tail byte(s) truncated at open\n"
        st.truncated_bytes;
    List.iter
      (fun (ns, n) ->
        Printf.printf "[%s] %d binding(s)\n" ns n;
        List.iter
          (fun (key, value) ->
            Printf.printf "  %-44s %9d bytes\n" key (String.length value))
          (Store.bindings s ~ns))
      (Store.namespaces s);
    Store.close s
  in
  Cmd.v
    (Cmd.info "ls" ~doc:"List a store's namespaces and live bindings.")
    Term.(const run $ store_path_arg)

let store_gc_cmd =
  let run path =
    let s = open_store path in
    let before = Store.file_bytes s in
    Store.compact s;
    let after = Store.file_bytes s in
    Printf.printf "%s: compacted %d -> %d bytes (reclaimed %d), %d live binding(s)\n"
      path before after (before - after) (Store.length s);
    Store.close s
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:"Compact a store: rewrite the live bindings and atomically \
             replace the log, dropping overwritten and deleted records.")
    Term.(const run $ store_path_arg)

let store_verify_cmd =
  let run path =
    match Store.verify ~path with
    | Ok st ->
      Printf.printf "%s: OK — %d record(s), %d live binding(s)\n" path
        st.records st.live
    | Error { Store.offset; reason; intact_records } ->
      Printf.eprintf "%s: CORRUPT at byte offset %d: %s (%d intact record(s) precede it)\n"
        path offset reason intact_records;
      exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Read-only integrity scan of a store file; exits non-zero and \
             prints the byte offset of the first damaged record.")
    Term.(const run $ store_path_arg)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect and maintain durable artifact stores (the files behind \
             $(b,--store) on dse and serve-bench).")
    [ store_ls_cmd; store_gc_cmd; store_verify_cmd ]

(* --- dse --- *)

let trace_json (result : Overgen_dse.Dse.result) =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\n  \"objective\": %.4f,\n  \"modeled_hours\": %.4f,\n  \"wall_seconds\": %.4f,\n  \"trace\": [\n"
    result.best.objective result.modeled_hours result.wall_seconds;
  List.iteri
    (fun i (t : Overgen_dse.Dse.trace_point) ->
      Printf.bprintf buf
        "    {\"island\": %d, \"iter\": %d, \"modeled_hours\": %.6f, \"est_ipc\": %.4f}%s\n"
        t.island t.iter t.modeled_hours t.est_ipc
        (if i = List.length result.trace - 1 then "" else ","))
    result.trace;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let dse_cmd =
  let run iterations seed tuned islands migration_interval explore_out
      store_path checkpoint_interval resume stop_after trace_out metrics_out
      names =
    if islands < 1 then `Error (false, "--islands must be positive")
    else if migration_interval < 1 then
      `Error (false, "--migration-interval must be positive")
    else if checkpoint_interval < 1 then
      `Error (false, "--checkpoint-interval must be positive")
    else if stop_after <> None && stop_after < Some 1 then
      `Error (false, "--stop-after-rounds must be positive")
    else if resume && store_path = None then
      `Error (false, "--resume requires --store")
    else begin
      let kernels = resolve_targets names in
      with_obs ~trace_out ~metrics_out @@ fun () ->
      let model = Overgen.train_model () in
      let apps = Overgen_dse.Dse.compile_apps ~tuned kernels in
      let config =
        { Overgen_dse.Dse.default_config with
          iterations; seed; islands; migration_interval }
      in
    let store = Option.map open_store store_path in
      let checkpoint =
        Option.map
          (fun s ->
            { Overgen_dse.Dse.store = s; key = "dse";
              interval = checkpoint_interval })
          store
      in
      if resume then
        Printf.printf "resuming from checkpoint in %s\n" (Option.get store_path);
      let result =
        Overgen_dse.Dse.explore ~config ?checkpoint ~resume
          ?stop_after_rounds:stop_after ~model apps
      in
      Option.iter Store.close store;
      (match stop_after with
      | Some k ->
        Printf.printf
          "stopped after %d migration round(s); checkpoint written, resume \
           with --resume\n"
          k
      | None -> ());
      Printf.printf "design: %s\n" (Overgen_adg.Sys_adg.describe result.best.sys);
      Printf.printf "objective (est. IPC geomean): %.1f\n" result.best.objective;
      Printf.printf
        "%d island(s), %d total iterations: %d accepted, %d invalid, %d \
         repaired, %d incremental, %d rescheduled\n"
        islands iterations result.stats.accepted result.stats.invalid
        result.stats.repaired result.stats.incremental result.stats.rescheduled;
      Printf.printf "modeled DSE time %.1f h (wall %.2f s), %d trace points\n"
        result.modeled_hours result.wall_seconds (List.length result.trace);
      (match explore_out with
      | Some path ->
        let oc = open_out path in
        output_string oc (trace_json result);
        close_out oc;
        Printf.printf "exploration trace written to %s\n" path
      | None -> ());
      `Ok ()
    end
  in
  let explore_out_arg =
    Arg.(value & opt (some string) None
         & info [ "explore-out" ] ~docv:"FILE"
             ~doc:"Dump the merged exploration trace (objective vs modeled \
                   hours per island) as JSON.")
  in
  let store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"FILE"
             ~doc:"Durable store for periodic run checkpoints; a later \
                   invocation with $(b,--resume) continues bit-identically.")
  in
  let checkpoint_interval_arg =
    Arg.(value & opt int 1
         & info [ "checkpoint-interval" ] ~docv:"N"
             ~doc:"Migration rounds between checkpoint writes.")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Continue from the checkpoint in $(b,--store) instead of \
                   starting fresh.")
  in
  let stop_after_arg =
    Arg.(value & opt (some int) None
         & info [ "stop-after-rounds" ] ~docv:"N"
             ~doc:"Halt after $(docv) migration rounds (a checkpoint is \
                   still written) — simulates an interrupted run.")
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:"Run the island-model design-space exploration and report the \
             merged trace (without synthesizing the winner).  With \
             $(b,--store) the run checkpoints its complete state \
             periodically and can be killed and resumed without losing \
             progress.")
    Term.(ret
            (const run $ iterations_arg $ seed_arg $ tuned_arg $ islands_arg
             $ migration_arg $ explore_out_arg $ store_arg
             $ checkpoint_interval_arg $ resume_arg $ stop_after_arg
             $ trace_out_arg $ metrics_out_arg $ targets_arg))

(* --- run --- *)

let load_or_generate ~iterations ~seed ~tuned ~design kernels =
  match design with
  | None -> gen_overlay ~iterations ~seed ~tuned kernels
  | Some path -> (
    match Overgen_adg.Serial.load ~path with
    | Error e ->
      Printf.eprintf "cannot load %s: %s\n" path e;
      exit 1
    | Ok sys -> (
      match Overgen.on_design ~model:(Overgen.train_model ()) sys kernels with
      | Ok o -> o
      | Error e ->
        Printf.eprintf "workloads do not map on %s: %s\n" path e;
        exit 1))

let run_cmd =
  let run iterations seed tuned design names =
    let kernels = resolve_targets names in
    let overlay = load_or_generate ~iterations ~seed ~tuned ~design kernels in
    Printf.printf "overlay: %s @ %.1f MHz\n"
      (Overgen_adg.Sys_adg.describe overlay.design.sys)
      overlay.synth.freq_mhz;
    List.iter
      (fun (k : Ir.kernel) ->
        match Overgen.run ~opts:{ Overgen.default_opts with tuned } overlay k with
        | Ok r ->
          Printf.printf "%-12s %10d cycles  %8.4f ms  ipc %6.1f  (compiled in %.1f ms)\n"
            k.name r.cycles r.wall_ms r.ipc (r.compile_seconds *. 1000.0)
        | Error e -> Printf.printf "%-12s unmappable: %s\n" k.name e)
      kernels
  in
  let design_arg =
    Arg.(value & opt (some string) None
         & info [ "design" ] ~docv:"FILE"
             ~doc:"Use a saved design instead of running the DSE.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Generate an overlay, then compile and simulate each workload.")
    Term.(const run $ iterations_arg $ seed_arg $ tuned_arg $ design_arg $ targets_arg)

(* --- compile --- *)

let compile_cmd =
  let run iterations seed tuned design trace_out metrics_out names =
    let kernels = resolve_targets names in
    with_obs ~trace_out ~metrics_out @@ fun () ->
    let overlay = load_or_generate ~iterations ~seed ~tuned ~design kernels in
    Printf.printf "overlay: %s\n"
      (Overgen_adg.Sys_adg.describe overlay.design.sys);
    List.iter
      (fun (k : Ir.kernel) ->
        match
          Overgen.compile ~opts:{ Overgen.default_opts with tuned } overlay k
        with
        | Ok c ->
          let ii_sum =
            List.fold_left
              (fun acc (s : Overgen_scheduler.Schedule.t) -> acc + s.ii)
              0 c.schedules
          in
          Printf.printf
            "%-12s %d region schedule(s)  II sum %2d  compiled in %.1f ms%s\n"
            k.name (List.length c.schedules) ii_sum (c.seconds *. 1000.0)
            (if c.from_cache then "  (cached)" else "")
        | Error e -> Printf.printf "%-12s unmappable: %s\n" k.name e)
      kernels
  in
  let design_arg =
    Arg.(value & opt (some string) None
         & info [ "design" ] ~docv:"FILE"
             ~doc:"Use a saved design instead of running the DSE.")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile workloads onto an overlay without simulating; with \
             $(b,--trace-out) the compile phases (mDFG build, scheduling, \
             spatial mapping, perf model) are recorded as nested spans.")
    Term.(const run $ iterations_arg $ seed_arg $ tuned_arg $ design_arg
          $ trace_out_arg $ metrics_out_arg $ targets_arg)

(* --- emit-c --- *)

let emit_c_cmd =
  let run tuned out names =
    let kernels = resolve_targets names in
    match out with
    | None ->
      List.iter (fun k -> print_string (C_source.emit ~tuned k)) kernels
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun (k : Ir.kernel) ->
          let path = Filename.concat dir (C_source.fn_name k ^ ".c") in
          let oc = open_out_bin path in
          output_string oc (C_source.emit ~tuned k);
          close_out oc;
          Printf.printf "wrote %s\n" path)
        kernels
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Write one <kernel>.c per workload instead of printing.")
  in
  Cmd.v
    (Cmd.info "emit-c"
       ~doc:"Emit a workload as the pragma'd C dialect the frontend parses \
             back (the golden sources under test/frontend-golden are this \
             command's output).")
    Term.(const run $ tuned_arg $ out_arg $ targets_arg)

(* --- frontend-fuzz --- *)

let frontend_fuzz_cmd =
  let module Fuzz = Overgen_frontend.Fuzz in
  let run seeds seed faults =
    (match Fuzz.round_trip_suite () with
    | [] ->
      Printf.printf "round-trip: all %d suite kernels parse back structurally \
                     equal with bit-identical compiled hashes\n"
        (List.length Kernels.all)
    | problems ->
      List.iter
        (fun (k, what) -> Printf.eprintf "round-trip %s: %s\n" k what)
        problems;
      Printf.eprintf "FAILED: %d suite kernel(s) do not round-trip\n"
        (List.length problems);
      exit 1);
    let s = Fuzz.run ~seeds ~seed ~fault_rate:faults () in
    print_string (Fuzz.summary_to_string s);
    if not (Fuzz.ok s) then begin
      Printf.eprintf "FAILED: %d violation(s), %d escaped exception(s)\n"
        s.Fuzz.violations s.Fuzz.escaped;
      exit 1
    end
  in
  let seeds_arg =
    Arg.(value & opt int 1000
         & info [ "seeds" ] ~docv:"N" ~doc:"Independent fuzz seeds to run.")
  in
  let seed_arg =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed of the fuzz streams.")
  in
  let faults_arg =
    Arg.(value & opt float 0.0
         & info [ "faults" ] ~docv:"RATE"
             ~doc:"Arm the compile/scheduler fault points at this per-visit \
                   injection rate.")
  in
  Cmd.v
    (Cmd.info "frontend-fuzz"
       ~doc:"Round-trip the built-in suite through emit/parse, then fuzz \
             the full pipeline (generate, emit, parse, compile, schedule, \
             simulate) with seeded random kernels; any escaped exception \
             or round-trip mismatch fails the run.")
    Term.(const run $ seeds_arg $ seed_arg $ faults_arg)

(* --- trace-validate --- *)

let trace_validate_cmd =
  let run path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    match Obs.Export.validate_json contents with
    | Error e ->
      Printf.eprintf "%s: invalid JSON: %s\n" path e;
      exit 1
    | Ok () ->
      (* a Chrome trace document must carry a traceEvents array *)
      let has_events =
        let needle = "\"traceEvents\"" in
        let n = String.length needle and l = String.length contents in
        let rec scan i =
          i + n <= l && (String.sub contents i n = needle || scan (i + 1))
        in
        scan 0
      in
      if not has_events then begin
        Printf.eprintf "%s: valid JSON but no \"traceEvents\" key\n" path;
        exit 1
      end;
      Printf.printf "%s: valid Chrome trace JSON\n" path
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE.json" ~doc:"Trace file to validate.")
  in
  Cmd.v
    (Cmd.info "trace-validate"
       ~doc:"Check that a file emitted by $(b,--trace-out) is well-formed \
             Chrome trace-event JSON.")
    Term.(const run $ path_arg)

(* --- emit --- *)

let emit_cmd =
  let run iterations seed names what =
    let kernels = resolve_targets names in
    let overlay = gen_overlay ~iterations ~seed ~tuned:false kernels in
    match what with
    | "rtl" ->
      let rtl = Overgen.rtl overlay in
      print_string (Overgen_rtl.Emit.to_string rtl);
      Printf.eprintf "emitted %d Verilog modules (top: %s)\n"
        (Overgen_rtl.Emit.module_count rtl) rtl.top
    | "binary" ->
      List.iter
        (fun (k : Ir.kernel) ->
          match Overgen.compile overlay k with
          | Ok c ->
            print_string
              (Overgen_isa.Assemble.disassemble (Overgen.binary overlay c.schedules))
          | Error e -> Printf.printf "%s: %s\n" k.name e)
        kernels
    | other ->
      Printf.eprintf "unknown artifact %s (rtl|binary)\n" other;
      exit 1
  in
  let what =
    Arg.(value & opt string "rtl" & info [ "what" ] ~docv:"ARTIFACT" ~doc:"rtl or binary.")
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit Verilog RTL or the application binary for an overlay.")
    Term.(const run $ iterations_arg $ seed_arg $ targets_arg $ what)

(* --- verify --- *)

let verify_cmd =
  let run names =
    let failures = ref 0 in
    List.iter
      (fun (k : Ir.kernel) ->
        List.iter
          (fun u ->
            match Overgen.verify_functional ~unroll:u k with
            | Ok () -> Printf.printf "%-12s u=%d OK\n" k.name u
            | Error e ->
              incr failures;
              Printf.printf "%-12s u=%d MISMATCH %s\n" k.name u e)
          [ 1; 2; 4 ])
      (resolve_targets names);
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Functionally verify the compiler on concrete data (golden vs decoupled).")
    Term.(const run $ targets_arg)

(* --- compare --- *)

let compare_cmd =
  let run iterations seed names =
    let kernels = resolve_targets names in
    let overlay = gen_overlay ~iterations ~seed ~tuned:false kernels in
    Printf.printf "%-12s %12s %12s %10s\n" "kernel" "overlay(ms)" "AutoDSE(ms)" "speedup";
    List.iter
      (fun (k : Ir.kernel) ->
        match Overgen.run overlay k with
        | Ok r ->
          let ad = Hls.runtime_ms (Hls.autodse ~tuned:false k).best in
          Printf.printf "%-12s %12.4f %12.4f %9.2fx\n" k.name r.wall_ms ad
            (ad /. r.wall_ms)
        | Error e -> Printf.printf "%-12s unmappable: %s\n" k.name e)
      kernels
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare an overlay against the AutoDSE HLS baseline.")
    Term.(const run $ iterations_arg $ seed_arg $ targets_arg)

(* --- serve-bench --- *)

module Service = Overgen_service.Service
module Registry = Overgen_service.Registry
module Cache = Overgen_service.Cache
module Trace = Overgen_service.Trace
module Telemetry = Overgen_service.Telemetry
module Fault = Overgen_fault.Fault
module Tenant = Overgen_fleet.Tenant
module Admission = Overgen_fleet.Admission
module Manager = Overgen_fleet.Manager
module Share = Overgen_fleet.Share

(* A digest of everything mode-independent in the responses: request id,
   success/failure, schedule count, summed II.  Equal digests between a
   --deterministic run and a --workers N run of the same seed demonstrate
   that worker parallelism does not change results. *)
let result_digest responses =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (r : Service.response) ->
      match r.result with
      | Ok schedules ->
        Printf.bprintf buf "%d ok %d %d\n" r.request.id (List.length schedules)
          (List.fold_left
             (fun acc (s : Overgen_scheduler.Schedule.t) -> acc + s.ii)
             0 schedules)
      | Error e ->
        Printf.bprintf buf "%d err %s\n" r.request.id (Service.error_to_string e))
    responses;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let serve_bench_cmd =
  let run requests workers deterministic seed users working_set cache_capacity
      queue_capacity dse faults fault_seed fault_transient deadline_ms retries
      store_path trace_out metrics_out tenants_spec assert_shares fleet_dse =
    let usage what = `Error (false, Printf.sprintf "%s must be positive" what) in
    let tenant_list =
      match Tenant.parse tenants_spec with Ok l -> l | Error _ -> []
    in
    if requests < 1 then usage "--requests"
    else if (not deterministic) && workers < 1 then usage "--workers"
    else if users < 1 then usage "--users"
    else if working_set < 1 then usage "--working-set"
    else if cache_capacity < 1 then usage "--cache-capacity"
    else if queue_capacity < 1 then usage "--queue-capacity"
    else if faults < 0.0 || faults > 1.0 then
      `Error (false, "--faults must be in [0, 1]")
    else if fault_transient < 0.0 || fault_transient > 1.0 then
      `Error (false, "--fault-transient must be in [0, 1]")
    else if retries < 0 then `Error (false, "--retries must be non-negative")
    else
      match Tenant.parse tenants_spec with
      | Error e -> `Error (false, Printf.sprintf "--tenants: %s" e)
      | Ok [] when assert_shares <> None ->
        `Error (false, "--assert-shares needs --tenants")
      | Ok _ ->
    begin
    (* the warm replay's service telemetry joins the Prometheus dump *)
    let warm_registry = ref None in
    let registries () = Option.to_list !warm_registry in
    with_obs ~registries ~trace_out ~metrics_out @@ fun () ->
    let model = Overgen.train_model () in
    let registry = Registry.create () in
    let must = function
      | Ok v -> v
      | Error e ->
        Printf.eprintf "serve-bench setup failed: %s\n" e;
        exit 1
    in
    let general = must (Overgen.general ~model Kernels.all) in
    ignore (must (Registry.register registry ~name:"general" general));
    let overlays =
      ("general", Kernels.all)
      ::
      (if dse <= 0 then []
       else
         List.map
           (fun suite ->
             let kernels = Kernels.of_suite suite in
             let name = Suite.to_string suite in
             let config =
               { Overgen_dse.Dse.default_config with iterations = dse; seed }
             in
             let overlay = Overgen.generate ~config ~model kernels in
             ignore (must (Registry.register registry ~name overlay));
             (name, kernels))
           Suite.all)
    in
    Printf.printf "registry: %s\n"
      (String.concat ", "
         (List.map
            (fun name ->
              let e = Option.get (Registry.find registry name) in
              Printf.sprintf "%s [%s]" name (String.sub e.fingerprint 0 8))
            (Registry.names registry)));
    let tenant_ids =
      Array.of_list (List.map (fun (t : Tenant.t) -> t.Tenant.id) tenant_list)
    in
    let spec =
      Trace.spec ~seed ~requests ~users ~working_set ~tenants:tenant_ids
        ~overlays ()
    in
    let trace = Trace.generate spec in
    if tenant_list <> [] then
      Printf.printf "tenants: %s\n"
        (String.concat ", " (List.map Tenant.to_string tenant_list));
    Printf.printf
      "trace: %d requests, %d users, %d distinct (overlay, kernel) pairs\n"
      requests users (Trace.distinct_keys spec);
    let mode =
      if deterministic then Service.Deterministic else Service.Workers workers
    in
    Printf.printf "mode: %s\n"
      (if deterministic then "deterministic (single-threaded)"
       else Printf.sprintf "%d worker domains" workers);
    let policy =
      {
        Service.default_policy with
        retries;
        deadline_s = Option.map (fun ms -> ms /. 1000.0) deadline_ms;
      }
    in
    (* Fault injection is armed only around the replays, so registry
       setup and overlay generation above run fault-free. *)
    if faults > 0.0 then begin
      Printf.printf
        "faults: rate %.2f, transient fraction %.2f, seed %d, retries %d%s\n"
        faults fault_transient fault_seed retries
        (match deadline_ms with
        | Some ms -> Printf.sprintf ", deadline %.0f ms" ms
        | None -> "");
      Fault.arm
        {
          Fault.default_config with
          seed = fault_seed;
          rate = faults;
          transient_fraction = fault_transient;
        };
      Fault.reset_stats ()
    end;
    print_newline ();
    (* The durable store backs only the warm (caching) replay: schedule
       outcomes write through, and a second serve-bench run against the
       same --store file starts its LRU warm from disk. *)
    let last_share_err = ref None in
    let store = Option.map open_store store_path in
    (match (store, store_path) with
    | Some s, Some p ->
      let st = Store.last_open_stats s in
      Printf.printf "store: %s, %d persisted binding(s)%s\n" p
        (Store.length s)
        (if st.truncated_bytes > 0 then
           Printf.sprintf " (recovered: %d damaged tail bytes truncated)"
             st.truncated_bytes
         else "")
    | _ -> ());
    let replay ~caching label =
      let cache =
        if caching then Cache.create ~capacity:cache_capacity ?store ()
        else Cache.create ~capacity:cache_capacity ()
      in
      if caching && Cache.warm_loaded cache > 0 then
        Printf.printf "cache warm-started with %d entr%s from the store\n"
          (Cache.warm_loaded cache)
          (if Cache.warm_loaded cache = 1 then "y" else "ies");
      let svc =
        Service.create ~mode ~queue_capacity ~caching ~cache ~policy registry
      in
      let responses, wall_s =
        match tenant_list with
        | [] ->
          let t0 = Unix.gettimeofday () in
          let responses = Service.run svc trace in
          (responses, Unix.gettimeofday () -. t0)
        | tenants ->
          (* weighted-fair replay: park the whole trace behind the
             admission layer, release it at once, and read the achieved
             shares off the completion order *)
          let adm = Admission.create ~tenants svc in
          let out = ref [] and order = ref [] in
          let om = Mutex.create () in
          let k (r : Service.response) =
            Mutex.lock om;
            out := r :: !out;
            (match r.result with
            | Error Service.Quota_exceeded -> ()
            | _ -> order := r.request.Service.tenant :: !order);
            Mutex.unlock om
          in
          Admission.hold adm;
          List.iter (fun r -> Admission.submit_k adm r ~k) trace;
          let t0 = Unix.gettimeofday () in
          Admission.release adm;
          Admission.drain adm;
          let wall_s = Unix.gettimeofday () -. t0 in
          let st = Admission.stats adm in
          let weights =
            List.map (fun (t : Tenant.t) -> (t.Tenant.id, t.Tenant.weight)) tenants
          in
          let reports = Share.measure ~weights (List.rev !order) in
          List.iter print_endline (Share.report_lines reports);
          if reports <> [] then last_share_err := Some (Share.max_rel_err reports);
          Printf.printf
            "admission: %d admitted, %d quota-shed, %d batch group(s) over %d \
             request(s)\n"
            st.Admission.admitted st.Admission.quota_shed st.Admission.batches
            st.Admission.batched_requests;
          let responses =
            List.sort
              (fun (a : Service.response) b ->
                compare a.request.Service.id b.request.Service.id)
              !out
          in
          (responses, wall_s)
      in
      Service.shutdown svc;
      if caching then
        warm_registry := Some (Telemetry.registry (Service.telemetry svc));
      print_string
        (Telemetry.report ~label ~wall_s (Telemetry.snapshot (Service.telemetry svc)));
      (match Service.cache svc with
      | Some c ->
        let s = Cache.stats c in
        Printf.printf
          "cache       hits %d / misses %d (hit rate %.1f %%), %d/%d entries, %d evictions\n"
          s.hits s.misses
          (100.0 *. Cache.hit_rate s)
          s.entries s.capacity s.evictions
      | None -> ());
      Printf.printf "result digest %s\n\n" (result_digest responses);
      (responses, wall_s)
    in
    let _, cold_s = replay ~caching:false "cold: cache disabled" in
    let warm_responses, warm_s = replay ~caching:true "warm: schedule cache" in
    if faults > 0.0 then begin
      Fault.disarm ();
      (match Fault.stats () with
      | [] -> ()
      | stats ->
        Printf.printf "fault points (both replays):\n";
        List.iter
          (fun (point, visits, injected) ->
            Printf.printf "  %-26s %6d visits  %5d injected\n" point visits
              injected)
          stats;
        print_newline ())
    end;
    let failures =
      List.length
        (List.filter
           (fun (r : Service.response) -> Result.is_error r.result)
           warm_responses)
    in
    let rps wall = float_of_int requests /. wall in
    Printf.printf
      "cold %8.1f req/s   warm %8.1f req/s   cache speedup %.1fx   failures %d\n"
      (rps cold_s) (rps warm_s) (cold_s /. warm_s) failures;
    (match store with
    | Some s ->
      Printf.printf "store: %d live binding(s), %d bytes persisted to %s\n"
        (Store.length s) (Store.file_bytes s) (Store.path s);
      Store.close s
    | None -> ());
    (match (assert_shares, !last_share_err) with
    | Some cap, Some err ->
      if err > cap then begin
        Printf.eprintf
          "FAILED: achieved share off by %.1f%% (--assert-shares %.1f%%)\n"
          (100.0 *. err) (100.0 *. cap);
        exit 1
      end;
      Printf.printf "shares: max relative error %.1f%% (cap %.1f%%)\n"
        (100.0 *. err) (100.0 *. cap)
    | Some _, None ->
      Printf.eprintf "FAILED: --assert-shares had no share measurement\n";
      exit 1
    | None, _ -> ());
    (* background fleet DSE: feed the warm replay's completions to the
       manager and promote one overlay for the observed miss profile *)
    if fleet_dse > 0 then begin
      let manager =
        Manager.create
          ~config:
            {
              Manager.default_config with
              promote_min_requests = 1;
              dse_iterations = fleet_dse;
              dse_top_kernels = 2;
            }
          ~model registry
      in
      List.iter (Manager.observe manager) warm_responses;
      match Manager.maybe_promote manager with
      | Some e ->
        Printf.printf "fleet: promoted %s [%s] from the warm miss profile\n"
          e.Registry.name
          (String.sub e.Registry.fingerprint 0 8)
      | None ->
        Printf.eprintf "FAILED: --fleet-dse saw no promotable demand\n";
        exit 1
    end;
    `Ok ()
    end
  in
  let requests_arg =
    Arg.(value & opt int 200
         & info [ "requests" ] ~docv:"N" ~doc:"Number of compile requests to replay.")
  in
  let workers_arg =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains (ignored with $(b,--deterministic)).")
  in
  let deterministic_arg =
    Arg.(value & flag
         & info [ "deterministic" ]
             ~doc:"Process requests single-threaded in submission order.")
  in
  let users_arg =
    Arg.(value & opt int 6 & info [ "users" ] ~docv:"N" ~doc:"Simulated user population.")
  in
  let ws_arg =
    Arg.(value & opt int 2
         & info [ "working-set" ] ~docv:"N" ~doc:"Kernels per user working set.")
  in
  let cache_cap_arg =
    Arg.(value & opt int 1024
         & info [ "cache-capacity" ] ~docv:"N" ~doc:"Schedule cache entries (LRU beyond).")
  in
  let queue_cap_arg =
    Arg.(value & opt int 1024
         & info [ "queue-capacity" ] ~docv:"N"
             ~doc:"Pending-request bound; admission rejects beyond it.")
  in
  let dse_arg =
    Arg.(value & opt int 0
         & info [ "dse" ] ~docv:"ITERS"
             ~doc:"Also register one DSE-specialized overlay per suite, explored
                   for $(docv) iterations (0 = general overlay only).")
  in
  let faults_arg =
    Arg.(value & opt float 0.0
         & info [ "faults" ] ~docv:"RATE"
             ~doc:"Inject seeded faults at every fault point with probability \
                   $(docv) per visit (0 disables injection; try 0.2).")
  in
  let fault_seed_arg =
    Arg.(value & opt int Fault.default_config.seed
         & info [ "fault-seed" ] ~docv:"SEED"
             ~doc:"Fault-injection plan seed; the same seed replays the same \
                   injections.")
  in
  let fault_transient_arg =
    Arg.(value & opt float Fault.default_config.transient_fraction
         & info [ "fault-transient" ] ~docv:"FRAC"
             ~doc:"Fraction of injected faults that are transient (retried, \
                   never cached) rather than deterministic (cached).")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"MS"
             ~doc:"Per-request deadline in milliseconds, covering queue wait, \
                   compute and retries; expired requests are shed.")
  in
  let retries_arg =
    Arg.(value & opt int Service.default_policy.retries
         & info [ "retries" ] ~docv:"N"
             ~doc:"Transient-failure retry attempts per request.")
  in
  let store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"FILE"
             ~doc:"Durable store backing the warm replay's schedule cache: \
                   outcomes write through, and a second serve-bench against \
                   the same $(docv) starts warm from disk.")
  in
  let tenants_bench_arg =
    Arg.(value & opt string ""
         & info [ "tenants" ] ~docv:"SPEC"
             ~doc:"Replay as weighted-fair multi-tenant traffic: \
                   comma-separated NAME:WEIGHT[:CLASS][:BURST@RATE] tenant \
                   specs (e.g. $(i,gold:10,silver:3,bronze:1:batch:25@0)); \
                   requests are striped over the tenants by user and \
                   admitted through the deficit-round-robin queue.")
  in
  let assert_shares_arg =
    Arg.(value & opt (some float) None
         & info [ "assert-shares" ] ~docv:"ERR"
             ~doc:"Exit 1 unless every tenant's achieved share of the \
                   backlogged prefix is within relative error $(docv) \
                   (e.g. 0.1) of its weight.")
  in
  let fleet_dse_arg =
    Arg.(value & opt int 0
         & info [ "fleet-dse" ] ~docv:"ITERS"
             ~doc:"After the warm replay, run one background fleet DSE of \
                   $(docv) iterations for the hottest under-served kernels \
                   and promote the winner into the registry (0 disables).")
  in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:"Replay a synthetic multi-user compile-request trace against the \
             overlay compile service, cold (cache disabled) then warm, and \
             report throughput, latency percentiles and cache statistics.  \
             With $(b,--faults) the replay runs under deterministic seeded \
             fault injection and reports retry/shed/deadline behaviour.")
    Term.(ret
            (const run $ requests_arg $ workers_arg $ deterministic_arg
             $ seed_arg $ users_arg $ ws_arg $ cache_cap_arg $ queue_cap_arg
             $ dse_arg $ faults_arg $ fault_seed_arg $ fault_transient_arg
             $ deadline_arg $ retries_arg $ store_arg $ trace_out_arg
             $ metrics_out_arg $ tenants_bench_arg $ assert_shares_arg
             $ fleet_dse_arg))

(* --- net-serve / net-client: the sharded network tier --- *)

module Net = Overgen_net

let net_die fmt = Printf.ksprintf (fun s -> Printf.eprintf "%s\n" s; exit 1) fmt

(* One overlay, generated once per process no matter how many in-process
   shards ask for it; a shard whose durable store already holds it skips
   the work entirely (the fast-restart path). *)
let net_general =
  lazy
    (match Overgen.general ~model:(Overgen.train_model ()) Kernels.all with
    | Ok o -> o
    | Error e -> net_die "general overlay: %s" e)

let net_setup registry =
  if Registry.find registry "general" = None then
    match Registry.register registry ~name:"general" (Lazy.force net_general) with
    | Ok _ -> ()
    | Error e -> net_die "register general: %s" e

let net_requests ?(traced = false) ?(tenants = [||]) ~seed ~requests ~users
    ~working_set () =
  let spec =
    Trace.spec ~seed ~requests ~users ~working_set ~tenants
      ~overlays:[ ("general", Kernels.all) ] ()
  in
  (* trace ids come from their own named stream so the workload draws —
     and therefore the request mix — are identical traced or not *)
  let trace_rng =
    Overgen_util.Rng.of_string (Printf.sprintf "net-trace-ids:%d" seed)
  in
  let reqs =
    Trace.generate spec
    |> List.map (fun (r : Service.request) ->
           {
             Net.Wire.id = r.id;
             user = r.user;
             tenant = r.tenant;
             overlay = r.overlay;
             payload =
               (match r.payload with
               | Service.Kernel k -> Net.Wire.Kernel k
               | Service.Source src -> Net.Wire.Source src);
             tuned = r.tuned;
             trace = (if traced then Obs.Span.fresh_trace trace_rng else "");
             parent_span = 0;
           })
    |> Array.of_list
  in
  (Trace.distinct_keys spec, reqs)

let net_load ?(traced = false) ?(tenants = [||]) ?misroute_every ~cluster
    ~requests ~rate ~seed ~users ~working_set () =
  let distinct, reqs =
    net_requests ~traced ~tenants ~seed ~requests ~users ~working_set ()
  in
  Printf.printf "trace: %d requests, %d distinct (overlay, kernel) keys\n%!"
    requests distinct;
  let cfg =
    {
      Net.Load_gen.cluster;
      vnodes = Net.Shard_map.default_vnodes;
      requests = reqs;
      rate;
      timeout_s = (float_of_int requests /. rate) +. 120.0;
      misroute_every;
    }
  in
  let summary = Net.Load_gen.run cfg in
  print_string (Net.Load_gen.report summary);
  if summary.Net.Load_gen.completed <> requests then
    net_die "FAILED: only %d/%d requests completed"
      summary.Net.Load_gen.completed requests;
  if summary.Net.Load_gen.failed <> 0 then
    net_die "FAILED: %d requests failed" summary.Net.Load_gen.failed

let net_block_until_signal ~on_tick =
  let stop = ref false in
  let handler = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  while not !stop do
    (try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    on_tick ()
  done

let net_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ops-plane scrape against one shard: metrics text, health snapshot,
   recent flight-recorder events — used by net-serve --self-test to prove
   the plane answers while traffic has just flowed *)
let net_scrape_check ~cluster =
  let peer : Net.Node.peer = cluster.(0) in
  match Net.Client.connect ~host:peer.host ~port:peer.port with
  | Error e -> net_die "ops scrape: %s" e
  | Ok c ->
    (match Net.Client.rpc c Net.Wire.Metrics_req with
    | Ok (Net.Wire.Metrics_dump { shard; text }) ->
      if not (net_contains text "overgen_net_requests_total") then
        net_die "ops scrape: shard %d metrics dump lacks request counter" shard;
      Printf.printf "ops plane: shard %d metrics %d bytes\n%!" shard
        (String.length text)
    | Ok _ -> net_die "ops scrape: unexpected metrics reply"
    | Error e -> net_die "ops scrape metrics: %s" e);
    (match Net.Client.rpc c Net.Wire.Health_req with
    | Ok (Net.Wire.Health { shard; quiesced; served; inflight; _ }) ->
      Printf.printf "ops plane: shard %d health ok (served %d, inflight %d%s)\n%!"
        shard served inflight
        (if quiesced then ", quiesced" else "")
    | Ok _ -> net_die "ops scrape: unexpected health reply"
    | Error e -> net_die "ops scrape health: %s" e);
    (match Net.Client.rpc c (Net.Wire.Recent_events_req { max = 100 }) with
    | Ok (Net.Wire.Events { shard; events }) ->
      Printf.printf "ops plane: shard %d flight recorder has %d recent events\n%!"
        shard (List.length events)
    | Ok _ -> net_die "ops scrape: unexpected events reply"
    | Error e -> net_die "ops scrape events: %s" e);
    Net.Client.close c

let net_write_spans ~pid path =
  let doc = Obs.Export.to_jsonl ~pid (Obs.Span.spans ()) in
  Obs.Export.write_file ~path doc;
  Printf.printf "spans written to %s\n%!" path

let net_serve_cmd =
  let run shards port cluster_s me store_dir ports_out workers redirect
      self_test rate seed trace_out flight_out misroute_every tenants_spec =
    if workers < 1 then `Error (false, "--workers must be positive")
    else
      match Tenant.parse tenants_spec with
      | Error e -> `Error (false, "--tenants: " ^ e)
      | Ok tenants ->
      begin
      if trace_out <> None then Obs.enable ();
      let store_path i =
        Option.map
          (fun dir ->
            if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
            Filename.concat dir (Printf.sprintf "shard-%d.store" i))
          store_dir
      in
      let mk_node ~cluster ~me =
        let config =
          {
            (Net.Node.default_config ~cluster ~me) with
            store_path = store_path me;
            workers;
            forward = not redirect;
            tenants;
          }
        in
        match Net.Node.init ~setup:net_setup config with
        | Ok n -> n
        | Error e -> net_die "shard %d: %s" me e
      in
      match cluster_s with
      | Some s -> (
        (* join an externally-coordinated cluster as shard --me *)
        match Net.Node.parse_cluster s with
        | Error e -> `Error (false, e)
        | Ok cluster ->
          if me < 0 || me >= Array.length cluster then
            `Error (false, "--me is outside --cluster")
          else begin
            (match Net.Server.listen ~port:cluster.(me).Net.Node.port () with
            | Error e -> net_die "listen: %s" e
            | Ok (fd, actual_port) ->
              let node = mk_node ~cluster ~me in
              let server = Net.Server.start ?flight_out ~node ~fd () in
              Printf.printf
                "shard %d/%d serving on 127.0.0.1:%d (^C for graceful stop)\n%!"
                me (Array.length cluster) actual_port;
              net_block_until_signal ~on_tick:(fun () ->
                  Net.Node.handle_timeout node);
              print_endline "draining...";
              Net.Server.stop server;
              Net.Node.shutdown node;
              (* span lanes are per-process: this shard's index is its pid
                 in the merged trace *)
              Option.iter (net_write_spans ~pid:me) trace_out);
            `Ok ()
          end)
      | None ->
        (* host the whole cluster in this process: bind every listener
           first, then hand each node the cluster built from the actual
           ports (so --port 0 works) *)
        if shards < 1 then `Error (false, "--shards must be positive")
        else begin
          let listeners =
            Array.init shards (fun i ->
                let p = if port = 0 then 0 else port + i in
                match Net.Server.listen ~port:p () with
                | Ok v -> v
                | Error e -> net_die "listen (shard %d): %s" i e)
          in
          let cluster =
            Array.map
              (fun (_, p) -> { Net.Node.host = "127.0.0.1"; port = p })
              listeners
          in
          let cluster_string =
            String.concat ","
              (Array.to_list
                 (Array.map
                    (fun (p : Net.Node.peer) ->
                      Printf.sprintf "%s:%d" p.Net.Node.host p.Net.Node.port)
                    cluster))
          in
          let nodes = Array.init shards (fun i -> mk_node ~cluster ~me:i) in
          (* one process, one flight recorder: every server dumps the same
             global ring, so the last graceful stop writes the full story *)
          let servers =
            Array.mapi
              (fun i node ->
                Net.Server.start ?flight_out ~node ~fd:(fst listeners.(i)) ())
              nodes
          in
          Printf.printf "%d shard%s up: %s\n%!" shards
            (if shards = 1 then "" else "s")
            cluster_string;
          (match ports_out with
          | None -> ()
          | Some path ->
            let oc = open_out path in
            output_string oc (cluster_string ^ "\n");
            close_out oc;
            Printf.printf "cluster written to %s\n%!" path);
          let stop_all () =
            Array.iter Net.Server.stop servers;
            Array.iter Net.Node.shutdown nodes
          in
          if self_test > 0 then begin
            Printf.printf "self-test: %d requests at %.0f req/s\n%!" self_test
              rate;
            net_load ~traced:(trace_out <> None) ?misroute_every ~cluster
              ~requests:self_test ~rate ~seed ~users:6 ~working_set:2 ();
            net_scrape_check ~cluster;
            stop_all ();
            print_endline "self-test passed"
          end
          else begin
            print_endline "(^C for graceful stop)";
            net_block_until_signal ~on_tick:(fun () ->
                Array.iter Net.Node.handle_timeout nodes);
            print_endline "draining...";
            stop_all ()
          end;
          Option.iter (net_write_spans ~pid:0) trace_out;
          `Ok ()
        end
    end
  in
  let shards_arg =
    Arg.(value & opt int 2
         & info [ "shards" ] ~docv:"K"
             ~doc:"Shards to host in this process (ignored with $(b,--cluster)).")
  in
  let port_arg =
    Arg.(value & opt int 0
         & info [ "port" ] ~docv:"PORT"
             ~doc:"Base listen port; shard $(i,i) binds PORT+$(i,i).  0 picks \
                   free ports (see $(b,--ports-out)).")
  in
  let cluster_arg =
    Arg.(value & opt (some string) None
         & info [ "cluster" ] ~docv:"H:P,H:P,..."
             ~doc:"Join a multi-process cluster with this static membership \
                   (index = shard id) and serve only shard $(b,--me) of it.")
  in
  let me_arg =
    Arg.(value & opt int 0
         & info [ "me" ] ~docv:"I"
             ~doc:"This process's shard index within $(b,--cluster).")
  in
  let store_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "store-dir" ] ~docv:"DIR"
             ~doc:"Durable stores, one $(i,shard-<i>.store) file per shard; a \
                   restarted shard replays its file instead of recompiling.")
  in
  let ports_out_arg =
    Arg.(value & opt (some string) None
         & info [ "ports-out" ] ~docv:"FILE"
             ~doc:"Write the actual cluster string (one line) once every \
                   listener is bound; pass it to net-client $(b,--connect).")
  in
  let workers_arg =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains per shard.")
  in
  let redirect_arg =
    Arg.(value & flag
         & info [ "redirect" ]
             ~doc:"Answer misdirected keys with a redirect instead of \
                   forwarding to the owner shard.")
  in
  let self_test_arg =
    Arg.(value & opt int 0
         & info [ "self-test" ] ~docv:"N"
             ~doc:"Drive $(docv) requests through the freshly-started shards, \
                   report, then stop (exit 1 on any loss or failure).")
  in
  let rate_arg =
    Arg.(value & opt float 2000.0
         & info [ "rate" ] ~docv:"RPS" ~doc:"Self-test arrival rate.")
  in
  let net_trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE.jsonl"
             ~doc:"Enable span recording and write this process's spans as \
                   JSONL on exit; feed the per-shard files to $(b,overgen \
                   trace-merge).  In $(b,--cluster) mode the span lane is \
                   labelled with $(b,--me); a whole-cluster process uses \
                   lane 0.")
  in
  let flight_out_arg =
    Arg.(value & opt (some string) None
         & info [ "flight-out" ] ~docv:"FILE.jsonl"
             ~doc:"Dump the flight recorder here — automatically on the \
                   first failed request and again, with full history, on \
                   graceful stop.")
  in
  let misroute_arg =
    Arg.(value & opt (some int) None
         & info [ "misroute-every" ] ~docv:"K"
             ~doc:"Self-test only: send every $(docv)-th request to the \
                   wrong shard to exercise the forward/redirect path.")
  in
  let tenants_arg =
    Arg.(value & opt string ""
         & info [ "tenants" ] ~docv:"ID:W[:CLASS[:BURST[@RATE]]],..."
             ~doc:"Enable multi-tenant admission on every shard: requests \
                   are weighted-fair scheduled per tenant and over-quota \
                   ones shed deterministically.  Tenant ids not listed here \
                   get a default weight-1, unlimited SLA.")
  in
  Cmd.v
    (Cmd.info "net-serve"
       ~doc:"Serve the overlay compile service over TCP as a consistent-hash \
             shard cluster: either host all $(b,--shards) in one process, or \
             join a static $(b,--cluster) as shard $(b,--me).  Stops \
             gracefully on SIGINT/SIGTERM, draining in-flight requests.")
    Term.(ret
            (const run $ shards_arg $ port_arg $ cluster_arg $ me_arg
             $ store_dir_arg $ ports_out_arg $ workers_arg $ redirect_arg
             $ self_test_arg $ rate_arg $ seed_arg $ net_trace_out_arg
             $ flight_out_arg $ misroute_arg $ tenants_arg))

(* one ops-plane RPC against every shard in turn *)
let net_each_shard cluster f =
  Array.iteri
    (fun i (peer : Net.Node.peer) ->
      match Net.Client.connect ~host:peer.host ~port:peer.port with
      | Error e -> net_die "shard %d: %s" i e
      | Ok c ->
        f i c;
        Net.Client.close c)
    cluster

(* Submit one pragma'd C source file to a live cluster: the first shard
   either owns the request's route key or forwards/redirects it, so any
   entry point works.  One redirect hop is followed; a second means the
   cluster's shard maps disagree, which is fatal. *)
let net_submit_source ~cluster ~overlay ~tuned ~tenant path =
  let src =
    try
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error e -> net_die "%s" e
  in
  let req =
    Net.Wire.Compile
      {
        Net.Wire.id = 0;
        user = "cli";
        tenant;
        overlay;
        payload = Net.Wire.Source src;
        tuned;
        trace = "";
        parent_span = 0;
      }
  in
  let rpc shard =
    let peer = cluster.(shard) in
    match Net.Client.connect ~host:peer.Net.Node.host ~port:peer.Net.Node.port with
    | Error e -> net_die "shard %d connect: %s" shard e
    | Ok c ->
      let r = Net.Client.rpc c req in
      Net.Client.close c;
      (match r with
      | Ok resp -> resp
      | Error e -> net_die "shard %d rpc: %s" shard e)
  in
  let report = function
    | Net.Wire.Result { outcome = Ok schedules; cache_hit; shard; _ } ->
      Printf.printf "%s: compiled on shard %d, %d region schedules%s\n" path
        shard (List.length schedules)
        (if cache_hit then " (cache hit)" else "")
    | Net.Wire.Result { outcome = Error e; _ } ->
      net_die "%s: %s" path (Net.Wire.wire_error_to_string e)
    | _ -> net_die "unexpected reply to compile"
  in
  match rpc 0 with
  | Net.Wire.Redirect { owner; _ } -> (
    match rpc owner with
    | Net.Wire.Redirect _ -> net_die "shard %d redirected a second time" owner
    | resp -> report resp)
  | resp -> report resp

let net_client_cmd =
  let run connect op requests rate seed users working_set events_max submit
      overlay tuned tenant =
    match Net.Node.parse_cluster connect with
    | Error e -> `Error (false, e)
    | Ok cluster ->
      net_each_shard cluster (fun i c ->
          match Net.Client.rpc c Net.Wire.Ping with
          | Ok (Net.Wire.Pong { shard; shards }) ->
            Printf.printf "shard %d/%d answering at %s:%d\n%!" shard shards
              cluster.(i).Net.Node.host cluster.(i).Net.Node.port;
            if shard <> i || shards <> Array.length cluster then
              net_die
                "cluster mismatch: %s:%d says it is shard %d of %d, but \
                 --connect places it at index %d of %d"
                cluster.(i).Net.Node.host cluster.(i).Net.Node.port shard
                shards i (Array.length cluster)
          | Ok _ -> net_die "shard %d: unexpected ping reply" i
          | Error e -> net_die "shard %d ping: %s" i e);
      (match op with
      | None when submit <> None ->
        (match submit with
        | Some path -> net_submit_source ~cluster ~overlay ~tuned ~tenant path
        | None -> assert false);
        `Ok ()
      | None when requests > 0 ->
        let tenants = if tenant = "" then [||] else [| tenant |] in
        net_load ~tenants ~cluster ~requests ~rate ~seed ~users ~working_set ();
        `Ok ()
      | None | Some "stats" ->
        (* status: one stats line per shard *)
        net_each_shard cluster (fun i c ->
            match Net.Client.rpc c Net.Wire.Stats_req with
            | Ok (Net.Wire.Stats { shard; served; hits; misses; warm_loaded })
              ->
              Printf.printf
                "shard %d: served %d, cache %d hits / %d misses, %d \
                 warm-loaded\n"
                shard served hits misses warm_loaded
            | Ok _ -> net_die "shard %d: unexpected stats reply" i
            | Error e -> net_die "shard %d stats: %s" i e);
        `Ok ()
      | Some "metrics" ->
        (* live Prometheus scrape: transport + node + service telemetry,
           no restart, no sidecar *)
        net_each_shard cluster (fun i c ->
            match Net.Client.rpc c Net.Wire.Metrics_req with
            | Ok (Net.Wire.Metrics_dump { shard; text }) ->
              Printf.printf "# shard %d\n%s" shard text
            | Ok _ -> net_die "shard %d: unexpected metrics reply" i
            | Error e -> net_die "shard %d metrics: %s" i e);
        `Ok ()
      | Some "health" ->
        net_each_shard cluster (fun i c ->
            match Net.Client.rpc c Net.Wire.Health_req with
            | Ok
                (Net.Wire.Health
                  { shard; quiesced; served; inflight; warm_loaded }) ->
              Printf.printf
                "shard %d: %s, served %d, inflight %d, warm-loaded %d\n" shard
                (if quiesced then "draining" else "serving")
                served inflight warm_loaded
            | Ok _ -> net_die "shard %d: unexpected health reply" i
            | Error e -> net_die "shard %d health: %s" i e);
        `Ok ()
      | Some "events" ->
        net_each_shard cluster (fun i c ->
            match
              Net.Client.rpc c (Net.Wire.Recent_events_req { max = events_max })
            with
            | Ok (Net.Wire.Events { shard; events }) ->
              Printf.printf "# shard %d: %d events\n" shard
                (List.length events);
              List.iter print_endline events
            | Ok _ -> net_die "shard %d: unexpected events reply" i
            | Error e -> net_die "shard %d events: %s" i e);
        `Ok ()
      | Some op -> `Error (true, Printf.sprintf "unknown operation %S" op))
  in
  let connect_arg =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"H:P,H:P,..."
             ~doc:"Cluster endpoints in shard order (the line net-serve \
                   $(b,--ports-out) writes).")
  in
  let requests_arg =
    Arg.(value & opt int 0
         & info [ "requests" ] ~docv:"N"
             ~doc:"Requests to drive open-loop through the cluster; 0 just \
                   pings every shard and prints its stats.")
  in
  let rate_arg =
    Arg.(value & opt float 2000.0
         & info [ "rate" ] ~docv:"RPS" ~doc:"Fixed arrival rate.")
  in
  let users_arg =
    Arg.(value & opt int 6
         & info [ "users" ] ~docv:"N" ~doc:"Simulated user population.")
  in
  let ws_arg =
    Arg.(value & opt int 2
         & info [ "working-set" ] ~docv:"N" ~doc:"Kernels per user working set.")
  in
  let op_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"OP"
             ~doc:"Ops-plane operation against the live cluster: \
                   $(b,stats) (cache/served summary, the default), \
                   $(b,metrics) (full Prometheus text exposition), \
                   $(b,health) (serving/draining snapshot) or \
                   $(b,events) (recent flight-recorder events as JSONL).")
  in
  let events_max_arg =
    Arg.(value & opt int 200
         & info [ "events-max" ] ~docv:"N"
             ~doc:"Most recent flight-recorder events to fetch per shard \
                   with $(b,events).")
  in
  let submit_arg =
    Arg.(value & opt (some file) None
         & info [ "submit" ] ~docv:"FILE.C"
             ~doc:"Submit one pragma'd C source file as a compile request; \
                   the owning shard parses it with the frontend and answers \
                   with its schedules (or a located source error).")
  in
  let overlay_arg =
    Arg.(value & opt string "general"
         & info [ "overlay" ] ~docv:"NAME"
             ~doc:"Overlay to compile $(b,--submit) sources against.")
  in
  let tenant_arg =
    Arg.(value & opt string ""
         & info [ "tenant" ] ~docv:"NAME"
             ~doc:"Tenant identity to stamp on submitted requests (rides \
                   the wire and labels the server's per-tenant telemetry); \
                   empty means untenanted.")
  in
  Cmd.v
    (Cmd.info "net-client"
       ~doc:"Ping a running net-serve cluster, then scrape its ops plane \
             ($(b,stats), $(b,metrics), $(b,health), $(b,events)), submit a \
             pragma'd C source file ($(b,--submit)), or, with \
             $(b,--requests), drive an open-loop load through it, reporting \
             goodput and latency percentiles.  Exits 1 if any request is \
             lost or fails.")
    Term.(ret
            (const run $ connect_arg $ op_arg $ requests_arg $ rate_arg
             $ seed_arg $ users_arg $ ws_arg $ events_max_arg $ submit_arg
             $ overlay_arg $ tuned_arg $ tenant_arg))

(* --- trace-merge: stitch per-process span files into one Chrome trace --- *)

let trace_merge_cmd =
  let run files out =
    let read_file path =
      match open_in_bin path with
      | exception Sys_error e -> net_die "%s" e
      | ic ->
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
    in
    let pid_spans =
      List.concat_map
        (fun path ->
          match Obs.Export.parse_jsonl (read_file path) with
          | Ok spans -> spans
          | Error e -> net_die "%s: %s" path e)
        files
    in
    if pid_spans = [] then net_die "no spans in %d input file(s)"
        (List.length files);
    (match Obs.Export.orphans pid_spans with
    | [] -> ()
    | orphans ->
      List.iter
        (fun (pid, parent) ->
          Printf.eprintf "orphan parent: process %d references span %d\n" pid
            parent)
        orphans;
      net_die "FAILED: %d orphan parent reference(s)" (List.length orphans));
    let doc = Obs.Export.merge_chrome pid_spans in
    (match Obs.Export.validate_json doc with
    | Ok () -> ()
    | Error e -> net_die "internal: merged trace is not valid JSON: %s" e);
    Obs.Export.write_file ~path:out doc;
    let pids =
      List.sort_uniq compare (List.map fst pid_spans)
    in
    Printf.printf "merged %d spans from %d process lanes into %s\n"
      (List.length pid_spans) (List.length pids) out;
    `Ok ()
  in
  let files_arg =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"SPANS.jsonl"
             ~doc:"Per-process span files (net-serve $(b,--trace-out)).")
  in
  let out_arg =
    Arg.(value & opt string "trace-merged.json"
         & info [ "out" ] ~docv:"FILE.json" ~doc:"Merged Chrome trace output.")
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:"Stitch the JSONL span files written by each shard process \
             ($(b,net-serve --trace-out)) into one Chrome trace-event \
             document with a lane per process, checking parent links and \
             validating the JSON before writing.  Load the result in \
             chrome://tracing or Perfetto.")
    Term.(ret (const run $ files_arg $ out_arg))

let () =
  let doc = "domain-specific FPGA overlay generation (OverGen, MICRO 2022)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "overgen" ~doc)
          [ list_cmd; show_cmd; generate_cmd; dse_cmd; run_cmd; compile_cmd;
            emit_c_cmd; frontend_fuzz_cmd; trace_validate_cmd; trace_merge_cmd;
            compare_cmd; emit_cmd; verify_cmd; serve_bench_cmd; store_cmd;
            net_serve_cmd; net_client_cmd ]))
