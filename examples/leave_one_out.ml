(* Deploying a NEW application on an existing overlay (paper Q5).

   We generate a MachSuite overlay while deliberately leaving gemm out of
   the target set, then compile gemm onto it anyway.  Overlay flexibility
   means the unseen kernel still maps — with some performance loss — and
   deploys in milliseconds instead of a new HLS synthesis run.

   Run with: dune exec examples/leave_one_out.exe *)

open Overgen_workload
module Hls = Overgen_hls.Hls

let () =
  print_endline "== Leave-one-out: deploying an unseen kernel ==";
  let model = Overgen.train_model () in
  let config = { Overgen_dse.Dse.default_config with iterations = 300 } in
  let held_out = Kernels.find "gemm" in
  let rest =
    List.filter
      (fun (k : Ir.kernel) -> k.name <> held_out.name)
      (Kernels.of_suite Suite.Machsuite)
  in
  Printf.printf "overlay generated for: %s\n"
    (String.concat ", " (List.map (fun (k : Ir.kernel) -> k.name) rest));
  let overlay = Overgen.generate ~config ~model rest in
  match Overgen.run overlay held_out with
  | Error e ->
    Printf.printf "gemm does not map on this overlay (%s);\n\
                   a DSE rerun would be needed - the compiler can signal this.\n" e
  | Ok r ->
    Printf.printf "gemm compiled onto the overlay in %.1f ms and runs in %.4f ms\n"
      (r.compile_seconds *. 1000.0) r.wall_ms;
    let full = Overgen.generate ~config:{ config with seed = 99 } ~model (held_out :: rest) in
    (match Overgen.run full held_out with
    | Ok r_full ->
      Printf.printf
        "an overlay that had seen gemm would run it in %.4f ms (%.0f%% of that\n\
         performance retained; paper reports ~50%% mean for leave-one-out)\n"
        r_full.wall_ms
        (100.0 *. r_full.wall_ms /. r.wall_ms)
    | Error _ -> ());
    let hls_hours = (Hls.autodse ~tuned:false held_out).dse_hours in
    Printf.printf
      "deploying via HLS instead would cost %.1f hours of synthesis --\n\
       ~%.0fx slower than the %.1f ms overlay compile\n"
      hls_hours
      (hls_hours *. 3600.0 /. (r.compile_seconds +. 1e-9))
      (r.compile_seconds *. 1000.0)
