(* A three-stage vision pipeline on one overlay.

   bgr2grey -> blur -> derivative run back-to-back per frame on the
   vision-suite overlay, reconfiguring between stages.  With per-stage HLS
   designs the FPGA would need a full reflash between stages (or waste area
   holding all three); the overlay switches in microseconds.

   Run with: dune exec examples/vision_pipeline.exe *)

open Overgen_workload
module Hls = Overgen_hls.Hls

let stages = [ "bgr2grey"; "blur"; "derivative" ]

let () =
  print_endline "== Vision pipeline on one overlay ==";
  let model = Overgen.train_model () in
  let config = { Overgen_dse.Dse.default_config with iterations = 300 } in
  let overlay = Overgen.generate ~config ~model (Kernels.of_suite Suite.Vision) in
  Printf.printf "overlay: %s at %.1f MHz\n"
    (Overgen_adg.Sys_adg.describe overlay.design.sys)
    overlay.synth.freq_mhz;
  let reconfig_ms = Overgen.reconfigure_us overlay /. 1000.0 in
  let frame_ms =
    List.fold_left
      (fun acc name ->
        match Overgen.run overlay (Kernels.find name) with
        | Error e -> failwith (name ^ ": " ^ e)
        | Ok r ->
          Printf.printf "  stage %-11s %8d cycles  %.4f ms\n" name r.cycles r.wall_ms;
          acc +. r.wall_ms +. reconfig_ms)
      0.0 stages
  in
  Printf.printf "frame time on the overlay: %.3f ms (incl. %.4f ms reconfig/stage)\n"
    frame_ms reconfig_ms;
  (* The HLS alternative: one fixed-function design per stage, reflashing
     the bitstream between stages of every frame. *)
  let hls_compute =
    List.fold_left
      (fun acc name ->
        acc +. Hls.runtime_ms (Hls.autodse ~tuned:false (Kernels.find name)).best)
      0.0 stages
  in
  let hls_frame = hls_compute +. (3.0 *. Overgen.fpga_reflash_ms) in
  Printf.printf
    "per-stage HLS designs with reflash: %.1f ms/frame (%.0fx slower end-to-end)\n"
    hls_frame (hls_frame /. frame_ms);
  Printf.printf
    "at 30 fps the overlay leaves %.1f%% of each 33ms frame budget free\n"
    (100.0 *. (1.0 -. (frame_ms /. 33.3)))
