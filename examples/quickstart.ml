(* Quickstart: the whole OverGen flow on a custom kernel.

   We define a small vector-multiply-add kernel in the loop-nest IR (the
   paper's `#pragma dsa config` program class), generate an overlay
   specialized to it, compile the kernel onto the overlay in milliseconds,
   and simulate it cycle by cycle.

   Run with: dune exec examples/quickstart.exe *)

open Overgen_adg
open Overgen_workload

(* c[i] = a[i] * b[i] + c[i] over 4096 elements, like Figure 2 of the paper. *)
let vecmla =
  let n = 4096 in
  let ld array v = Ir.Load { array; index = Ir.Direct (Ir.affine [ (v, 1) ]) } in
  {
    Ir.name = "vecmla";
    suite = Suite.Dsp;
    dtype = Dtype.I32;
    lanes = 1;
    arrays = [ ("a", n); ("b", n); ("c", n) ];
    size_desc = "4096";
    regions =
      [
        {
          rname = "mla";
          loops = [ { var = "i"; trip = Ir.Fixed n } ];
          body =
            [
              Ir.Store
                ( { array = "c"; index = Ir.Direct (Ir.affine [ ("i", 1) ]) },
                  Ir.Binop (Op.Add, Ir.Binop (Op.Mul, ld "a" "i", ld "b" "i"), ld "c" "i")
                );
            ];
          hls = Ir.Clean;
        };
      ];
    og_tuning = None;
    window_reuse = false;
    needs_broadcast = false;
  }

let () =
  print_endline "== OverGen quickstart ==";
  print_endline "source program:";
  print_string (Ir.pretty vecmla);

  (* 1. Train the FPGA resource model (the paper's Section V-D MLP). *)
  print_endline "\n[1/4] training the ML resource model...";
  let model = Overgen.train_model () in

  (* 2. Generate an overlay specialized to this kernel (DSE, Section V). *)
  print_endline "[2/4] running the overlay-generation DSE...";
  let config = { Overgen_dse.Dse.default_config with iterations = 150 } in
  let overlay = Overgen.generate ~config ~model [ vecmla ] in
  Printf.printf "  chosen design: %s\n" (Sys_adg.describe overlay.design.sys);
  Printf.printf "  synthesized at %.1f MHz, %s\n" overlay.synth.freq_mhz
    (Overgen_fpga.Res.describe_utilization overlay.synth.res
       ~device:Overgen_fpga.Device.xcvu9p.capacity);

  (* 3. Compile the application onto the overlay (seconds, not hours). *)
  print_endline "[3/4] compiling the application onto the overlay...";
  (match Overgen.run overlay vecmla with
  | Error e -> Printf.printf "  failed: %s\n" e
  | Ok report ->
    Printf.printf "  compile time: %.1f ms (an HLS run would be hours)\n"
      (report.compile_seconds *. 1000.0);
    (* 4. Simulate. *)
    Printf.printf "[4/4] simulated: %d cycles = %.3f ms at %.1f MHz (IPC %.1f)\n"
      report.cycles report.wall_ms overlay.synth.freq_mhz report.ipc);
  Printf.printf "reconfiguring the overlay for another app takes %.1f us\n"
    (Overgen.reconfigure_us overlay);
  Printf.printf "(reflashing the FPGA bitstream instead: %.0f ms)\n"
    Overgen.fpga_reflash_ms
