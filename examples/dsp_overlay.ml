(* A domain-specific overlay for the DSP suite.

   Generates one overlay for the five DSP workloads (paper Table III's "DSP"
   column), then time-multiplexes it across all of them with microsecond
   reconfiguration — the usage model Figure 1 advocates.

   Run with: dune exec examples/dsp_overlay.exe *)

open Overgen_adg
open Overgen_workload
module Hls = Overgen_hls.Hls

let () =
  print_endline "== DSP-suite overlay ==";
  let model = Overgen.train_model () in
  let config = { Overgen_dse.Dse.default_config with iterations = 300 } in
  let kernels = Kernels.of_suite Suite.Dsp in
  let overlay = Overgen.generate ~config ~model kernels in
  Printf.printf "design: %s\n" (Sys_adg.describe overlay.design.sys);
  let stats = Adg.stats overlay.design.sys.adg in
  Printf.printf
    "accelerator tile: %d PEs / %d switches (avg radix %.2f), fp add/mul/div/sqrt \
     on %d/%d/%d/%d PEs\n"
    stats.n_pe stats.n_switch stats.avg_radix stats.flt_add stats.flt_mul
    stats.flt_div stats.flt_sqrt;
  (match overlay.dse with
  | Some r ->
    Printf.printf "DSE: %d iterations, %.1f modeled hours (one-time, per domain)\n"
      (List.length r.trace) r.modeled_hours
  | None -> ());
  print_endline "\ntime-multiplexing the suite on one configuration-switchable fabric:";
  Printf.printf "%-10s %12s %12s %14s %12s\n" "kernel" "cycles" "overlay(ms)"
    "AutoDSE(ms)" "speedup";
  List.iter
    (fun (k : Ir.kernel) ->
      match Overgen.run overlay k with
      | Error e -> Printf.printf "%-10s unmappable: %s\n" k.name e
      | Ok r ->
        let ad = Hls.runtime_ms (Hls.autodse ~tuned:false k).best in
        Printf.printf "%-10s %12d %12.4f %14.4f %11.2fx\n" k.name r.cycles
          r.wall_ms ad (ad /. r.wall_ms))
    kernels;
  Printf.printf
    "\nswitching between kernels costs %.1f us of reconfiguration; an HLS\n\
     design per kernel would reflash the FPGA (%.0f ms) every switch.\n"
    (Overgen.reconfigure_us overlay) Overgen.fpga_reflash_ms
